"""Tests for the operational semantics (Definitions 2.3, 2.4, 2.6)."""

import pytest

from repro.fo import Instance
from repro.runtime import (
    GlobalState, initial_states, input_choices, peer_successors,
    snapshot_view, successors,
)
from repro.spec import (
    ChannelSemantics, Composition, DECIDABLE_DEFAULT, DECIDABLE_FAITHFUL,
    DETERMINISTIC_LOSSY, FlatSendDiscipline, NestedEmptySend,
    PERFECT_BOUNDED, PeerBuilder,
)

DOMAIN = ("a", "b")


class TestInitialStates:
    def test_empty_state_and_queues(self, sender_receiver,
                                    sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        for st in inits:
            assert st.data["R.got"] == frozenset()
            assert st.queue("msg") == ()
            assert st.mover is None

    def test_initial_inputs_enumerate_options(self, sender_receiver,
                                              sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        picks = {st.data["S.pick"] for st in inits}
        # one item 'a': empty input or pick ('a',)
        assert picks == {frozenset(), frozenset({("a",)})}

    def test_unknown_db_relation_rejected(self, sender_receiver):
        with pytest.raises(Exception):
            initial_states(sender_receiver,
                           {"S": Instance({"nope": [("a",)]})}, DOMAIN)


def pick_state(states, **conditions):
    """First state whose data matches all relation->rows conditions."""
    for st in states:
        if all(st.data[k] == frozenset(v) for k, v in conditions.items()):
            return st
    raise AssertionError(f"no state matching {conditions}")


class TestPeerMove:
    def test_send_enqueues(self, sender_receiver, sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        succ = peer_successors(sender_receiver, st, "S", DOMAIN,
                               PERFECT_BOUNDED)
        assert any(s.queue("msg") == (frozenset({("a",)}),) for s in succ)
        assert all(s.mover == "S" for s in succ)

    def test_lossy_branches_include_drop(self, sender_receiver,
                                         sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        succ = peer_successors(sender_receiver, st, "S", DOMAIN,
                               DECIDABLE_DEFAULT)
        queues = {s.queue("msg") for s in succ}
        assert () in queues                      # dropped
        assert (frozenset({("a",)}),) in queues  # delivered

    def test_perfect_always_delivers(self, sender_receiver,
                                     sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        succ = peer_successors(sender_receiver, st, "S", DOMAIN,
                               PERFECT_BOUNDED)
        assert all(s.queue("msg") for s in succ)

    def test_bounded_queue_drops_when_full(self, sender_receiver,
                                           sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        [full] = [
            s for s in peer_successors(sender_receiver, st, "S", DOMAIN,
                                       PERFECT_BOUNDED)
            if s.queue("msg") and s.data["S.pick"]
        ]
        # queue bound 1: a second send is dropped
        succ2 = peer_successors(sender_receiver, full, "S", DOMAIN,
                                PERFECT_BOUNDED)
        assert all(len(s.queue("msg")) == 1 for s in succ2)
        assert all("msg" in s.sent and "msg" not in s.enqueued
                   for s in succ2)

    def test_receive_updates_state_and_dequeues(self, sender_receiver,
                                                sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        [sent] = [
            s for s in peer_successors(sender_receiver, st, "S", DOMAIN,
                                       PERFECT_BOUNDED)
            if s.queue("msg") and not s.data["S.pick"]
        ]
        succ = peer_successors(sender_receiver, sent, "R", DOMAIN,
                               PERFECT_BOUNDED)
        assert len(succ) == 1
        after = succ[0]
        assert after.data["R.got"] == frozenset({("a",)})
        assert after.queue("msg") == ()  # consumed queues dequeue

    def test_prev_input_tracks_last_nonempty(self, sender_receiver,
                                             sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        st = pick_state(inits, **{"S.pick": {("a",)}})
        succ = peer_successors(sender_receiver, st, "S", DOMAIN,
                               PERFECT_BOUNDED)
        assert all(
            s.data["S.prev_pick"] == frozenset({("a",)}) for s in succ
        )
        # moving with empty input keeps prev unchanged
        empty_in = pick_state(succ, **{"S.pick": set()})
        succ2 = peer_successors(sender_receiver, empty_in, "S", DOMAIN,
                                PERFECT_BOUNDED)
        assert all(
            s.data["S.prev_pick"] == frozenset({("a",)}) for s in succ2
        )


class TestFlatSendDiscipline:
    def make(self):
        sender = (
            PeerBuilder("S")
            .database("items", 1)
            .input("go", 0)
            .flat_out_queue("msg", 1)
            .input_rule("go", [], "true")
            .send_rule("msg", ["x"], "go & items(x)")
            .build()
        )
        receiver = (
            PeerBuilder("R").flat_in_queue("msg", 1)
            .state("got", 1).insert_rule("got", ["x"], "?msg(x)")
            .build()
        )
        comp = Composition([sender, receiver])
        dbs = {"S": Instance({"items": [("a",), ("b",)]})}
        return comp, dbs

    def go_state(self, comp, dbs):
        inits = initial_states(comp, dbs, DOMAIN)
        return pick_state(inits, **{"S.go": {()}})

    def test_nondeterministic_pick(self):
        comp, dbs = self.make()
        st = self.go_state(comp, dbs)
        succ = peer_successors(comp, st, "S", DOMAIN, PERFECT_BOUNDED)
        sent = {s.queue("msg") for s in succ if s.queue("msg")}
        assert sent == {(frozenset({("a",)}),), (frozenset({("b",)}),)}

    def test_deterministic_error(self):
        comp, dbs = self.make()
        st = self.go_state(comp, dbs)
        semantics = ChannelSemantics(
            lossy=False, queue_bound=1,
            flat_send=FlatSendDiscipline.DETERMINISTIC_ERROR,
        )
        succ = peer_successors(comp, st, "S", DOMAIN, semantics)
        assert all(not s.queue("msg") for s in succ)
        assert all(s.data["S.error_msg"] for s in succ)

    def test_error_flag_resets(self):
        comp, dbs = self.make()
        st = self.go_state(comp, dbs)
        semantics = ChannelSemantics(
            lossy=False, queue_bound=1,
            flat_send=FlatSendDiscipline.DETERMINISTIC_ERROR,
        )
        errored = peer_successors(comp, st, "S", DOMAIN, semantics)
        calm = pick_state(errored, **{"S.go": set()})
        succ2 = peer_successors(comp, calm, "S", DOMAIN, semantics)
        assert all(not s.data["S.error_msg"] for s in succ2)


class TestNestedQueues:
    def test_whole_set_is_one_message(self, nested_pair, nested_pair_db):
        inits = initial_states(nested_pair, nested_pair_db, DOMAIN)
        st = pick_state(inits, **{"P.publish": {()}})
        succ = peer_successors(nested_pair, st, "P", DOMAIN,
                               PERFECT_BOUNDED)
        delivered = [s for s in succ if s.queue("bulk")]
        assert delivered
        for s in delivered:
            assert s.queue("bulk") == (
                frozenset({("a", "b"), ("a", "c")}),
            )

    def test_empty_nested_send_skipped_by_default(self, nested_pair,
                                                  nested_pair_db):
        inits = initial_states(nested_pair, nested_pair_db, DOMAIN)
        st = pick_state(inits, **{"P.publish": set()})
        succ = peer_successors(nested_pair, st, "P", DOMAIN,
                               DECIDABLE_DEFAULT)
        assert all(not s.queue("bulk") for s in succ)

    def test_empty_nested_send_enqueued_in_faithful_mode(self, nested_pair,
                                                         nested_pair_db):
        inits = initial_states(nested_pair, nested_pair_db, DOMAIN)
        st = pick_state(inits, **{"P.publish": set()})
        semantics = ChannelSemantics(
            lossy=False, queue_bound=1,
            nested_empty_send=NestedEmptySend.ENQUEUE,
        )
        succ = peer_successors(nested_pair, st, "P", DOMAIN, semantics)
        assert all(s.queue("bulk") == (frozenset(),) for s in succ)

    def test_receiver_unpacks_set(self, nested_pair, nested_pair_db):
        inits = initial_states(nested_pair, nested_pair_db, DOMAIN)
        st = pick_state(inits, **{"P.publish": {()}})
        [sent] = [
            s for s in peer_successors(nested_pair, st, "P", DOMAIN,
                                       PERFECT_BOUNDED)
            if s.queue("bulk") and not s.data["P.publish"]
        ]
        [after] = peer_successors(nested_pair, sent, "C", DOMAIN,
                                  PERFECT_BOUNDED)
        assert after.data["C.stored"] == frozenset({("a", "b"), ("a", "c")})


class TestSuccessorsUnion:
    def test_all_peers_move(self, sender_receiver, sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        succ = successors(sender_receiver, inits[0], DOMAIN,
                          DECIDABLE_DEFAULT)
        assert {s.mover for s in succ} == {"S", "R"}

    def test_snapshot_view_move_flags(self, sender_receiver,
                                      sender_receiver_db):
        inits = initial_states(sender_receiver, sender_receiver_db, DOMAIN)
        succ = peer_successors(sender_receiver, inits[0], "S", DOMAIN,
                               DECIDABLE_DEFAULT)
        view = snapshot_view(succ[0], sender_receiver)
        assert view.truth("move_S")
        assert not view.truth("move_R")
