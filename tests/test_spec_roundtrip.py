"""Property-based round-trip suite for the ``.dws`` emitter.

The fuzz generator's output must survive the surface syntax: dumping a
generated spec via :func:`repro.spec.dsl.dump_document` and parsing it
back must yield a structurally equal composition, identical databases,
and the same property set.  Hypothesis drives the (seed, theorem row)
space; the generator is deterministic per seed, so every failure here
is replayable with ``generate(seed, row)``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import THEOREM_ROWS, generate
from repro.library import dispatch, ecommerce, loan, payments, travel
from repro.spec.dsl import (
    compositions_equal, dump_document, load_composition, load_databases,
    load_document,
)

ROWS = sorted(THEOREM_ROWS)

_SETTINGS = settings(max_examples=60, deadline=None)


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=100_000),
       row=st.sampled_from(ROWS))
def test_generated_spec_roundtrips(seed: int, row: str) -> None:
    spec = generate(seed, row)
    comp, dbs, props = load_document(spec.to_dws())
    assert compositions_equal(spec.composition, comp)
    assert dbs == spec.databases
    assert props == spec.properties


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=100_000),
       row=st.sampled_from(ROWS))
def test_dump_is_a_fixpoint(seed: int, row: str) -> None:
    """dump(load(dump(x))) == dump(x): the emission is canonical."""
    spec = generate(seed, row)
    text = dump_document(spec.composition, spec.databases,
                         spec.properties)
    comp, dbs, props = load_document(text)
    assert dump_document(comp, dbs, props) == text


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=100_000),
       row=st.sampled_from(ROWS))
def test_generation_is_deterministic(seed: int, row: str) -> None:
    a, b = generate(seed, row), generate(seed, row)
    assert compositions_equal(a.composition, b.composition)
    assert a.databases == b.databases
    assert a.properties == b.properties
    assert a.semantics == b.semantics
    assert a.to_dws() == b.to_dws()


def test_library_compositions_roundtrip() -> None:
    cases = [
        (loan.loan_composition(), loan.standard_database()),
        (ecommerce.ecommerce_composition(),
         ecommerce.standard_database()),
        (travel.travel_composition(), travel.standard_database()),
        (payments.payments_composition(), payments.standard_database()),
        (dispatch.dispatch_composition(), dispatch.standard_database()),
    ]
    for composition, databases in cases:
        text = dump_document(composition, databases)
        assert compositions_equal(composition, load_composition(text))
        assert load_databases(text) == databases
