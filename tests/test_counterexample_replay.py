"""Counterexample-replay regression tests.

Every lasso the verifier reports must be a genuine run of the
operational semantics: the prefix starts in an initial snapshot, each
consecutive pair of snapshots is related by the legal-successor
relation of :mod:`repro.runtime.step`, and the cycle closes back on
itself.  :func:`repro.runtime.validate_lasso` replays the reported
snapshots and returns a list of discrepancies; an empty list means the
counterexample survives independent replay.

These cases pin the known-violated library properties so a regression
in either the search (bogus lasso) or the runtime (successor relation
drift) shows up as a replay failure rather than a silently wrong
verdict.
"""

import pytest

from repro.fo import Instance
from repro.library import ecommerce, loan, synthetic, travel
from repro.runtime import validate_lasso
from repro.spec import Composition, PeerBuilder
from repro.verifier import verification_domain, verify


def _replay(comp, dbs, prop, candidates=None, fresh_count=1):
    dom = verification_domain(comp, [], dbs, fresh_count=fresh_count)
    result = verify(comp, prop, dbs, domain=dom,
                    valuation_candidates=candidates)
    assert not result.satisfied, f"expected a violation: {result.summary()}"
    cex = result.counterexample
    assert cex is not None
    lasso = cex.lasso
    assert lasso.cycle, "a violating lasso must have a non-empty cycle"
    problems = validate_lasso(comp, dbs, dom.values, lasso)
    assert not problems, "\n".join(problems)
    return result


def test_replay_lossy_channel_liveness():
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": [("a",), ("b",)]})}
    _replay(comp, dbs, "forall x: G( S.pick(x) -> F R.got(x) )")


@pytest.mark.slow
def test_replay_loan_buggy_officer():
    comp = loan.loan_composition(buggy_officer=True)
    _replay(comp, loan.standard_database("poor"),
            loan.PROPERTY_BANK_POLICY_POINTWISE,
            candidates=loan.STANDARD_CANDIDATES)


@pytest.mark.slow
def test_replay_loan_responsiveness():
    comp = loan.loan_composition()
    _replay(comp, loan.standard_database("fair"),
            loan.PROPERTY_RESPONSIVENESS,
            candidates=loan.STANDARD_CANDIDATES)


@pytest.mark.slow
def test_replay_ecommerce_order_resolved():
    comp = ecommerce.ecommerce_composition()
    _replay(comp, ecommerce.standard_database("good"),
            ecommerce.PROPERTY_ORDER_RESOLVED,
            candidates={"p": ("widget",), "card": ("visa", "amex")})


@pytest.mark.slow
def test_replay_travel_booking_confirmed():
    comp = travel.travel_composition()
    _replay(comp, travel.standard_database(),
            travel.PROPERTY_BOOKING_CONFIRMED,
            candidates={"f": ("fl1",), "d": ("rome",), "r": ("rm1",)})


def test_replay_chain_liveness():
    comp = synthetic.relay_chain(1)
    _replay(comp, synthetic.chain_databases(1),
            synthetic.chain_liveness_property(1))


def test_validate_lasso_rejects_corrupted_cycle():
    """Replay catches a lasso whose cycle is not actually closed."""
    from dataclasses import replace

    comp = synthetic.relay_chain(1)
    dbs = synthetic.chain_databases(1)
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    result = verify(comp, synthetic.chain_liveness_property(1), dbs,
                    domain=dom)
    lasso = result.counterexample.lasso
    # truncating the cycle to its first snapshot (when the real cycle is
    # longer) or duplicating the prefix head breaks successor legality
    corrupted = replace(lasso, prefix=lasso.prefix + (lasso.prefix[0],))
    problems = validate_lasso(comp, dbs, dom.values, corrupted)
    assert problems, "corrupted lasso should fail replay"
