"""Tests for modular (assume-guarantee) verification (Section 5)."""

import pytest

from repro.errors import VerificationError
from repro.fo import Instance
from repro.ltl import LNext, evaluate_on_word, latom, lwalk
from repro.ltlfo import parse_ltlfo
from repro.spec import Composition, DECIDABLE_DEFAULT, PeerBuilder
from repro.verifier import (
    environment_schema, parse_env_spec, translate_env_spec, verify,
    verify_modular,
)
from repro.verifier.domain import VerificationDomain
from repro.verifier.product import TransitionCache

DOMAIN = VerificationDomain(("a",), ("$f0",))
DB = {"P0": Instance({"items": [("a",)]})}


class TestEnvSpecParsing:
    def test_environment_schema(self, open_relay):
        schema = environment_schema(open_relay)
        assert "outbound" in schema   # env consumes (E.Qin)
        assert "inbound" in schema    # env produces (E.Qout)

    def test_parse_renames_to_env(self, open_relay):
        spec = parse_env_spec("G forall x: ?outbound(x) -> !inbound(x)",
                              open_relay)
        assert spec.relations() == frozenset({"ENV.outbound",
                                              "ENV.inbound"})
        assert spec.is_strict

    def test_closed_composition_rejected(self, sender_receiver):
        with pytest.raises(VerificationError):
            parse_env_spec("G true", sender_receiver)


class TestTranslation:
    def test_recipient_translation_introduces_next(self, open_relay):
        spec = parse_env_spec("G forall x: ?outbound(x) -> !inbound(x)",
                              open_relay)
        translated = translate_env_spec(spec, open_relay, "recipient")
        assert any(isinstance(n, LNext) for n in lwalk(translated))
        # the received flag appears in some payload
        payloads = " ".join(
            str(n.ap) for n in lwalk(translated)
            if hasattr(n, "ap")
        )
        assert "received_inbound" in payloads
        assert "@prev." in payloads

    def test_source_translation_no_next_inside_payload(self, open_relay):
        spec = parse_env_spec("G forall x: !inbound(x) -> x = \"a\"",
                              open_relay)
        translated = translate_env_spec(spec, open_relay, "source")
        payloads = " ".join(
            str(n.ap) for n in lwalk(translated) if hasattr(n, "ap")
        )
        assert "received_inbound" in payloads
        assert "@prev." not in payloads

    def test_bad_observer_rejected(self, open_relay):
        spec = parse_env_spec("G true", open_relay)
        with pytest.raises(VerificationError):
            translate_env_spec(spec, open_relay, "midway")


class TestModularVerification:
    PROP = 'forall x: G( P1.seen(x) -> x = "a" )'
    SPEC = 'G forall x, y: ?outbound(y) & !inbound(x) -> x = "a"'
    SOURCE_SPEC = 'G forall x: !inbound(x) -> x = "a"'

    def test_unconstrained_environment_violates(self, open_relay):
        r = verify(open_relay, self.PROP, DB, domain=DOMAIN,
                   valuation_candidates={"x": ("a", "$f0")})
        assert not r.satisfied
        assert r.counterexample.valuation["x"] == "$f0"

    def test_source_spec_restores_property(self, open_relay):
        r = verify_modular(
            open_relay, self.PROP, self.SOURCE_SPEC, DB,
            domain=DOMAIN, observer="source",
            valuation_candidates={"x": ("a", "$f0")},
        )
        assert r.satisfied

    def test_recipient_spec_cannot_forbid_unsolicited(self, open_relay):
        # the paper's observer-at-recipient translation constrains only
        # messages arriving right after the spec's trigger; unsolicited
        # garbage still violates the property (see DESIGN.md)
        spec = 'G forall x: ?outbound(x) -> !inbound(x)'
        r = verify_modular(
            open_relay, self.PROP, spec, DB, domain=DOMAIN,
            observer="recipient",
            valuation_candidates={"x": ("a", "$f0")},
        )
        assert not r.satisfied

    def test_closed_composition_rejected(self, sender_receiver,
                                         sender_receiver_db):
        with pytest.raises(VerificationError):
            verify_modular(sender_receiver, "G true", "G true",
                           sender_receiver_db)

    def test_nonstrict_spec_rejected_by_default(self, open_relay):
        spec = "forall x: G ( !inbound(x) -> F ?outbound(x) )"
        with pytest.raises(VerificationError):
            verify_modular(open_relay, self.PROP, spec, DB, domain=DOMAIN)

    def test_nonstrict_spec_with_expansion(self, open_relay):
        # expanded over the bounded domain (Theorem 5.5 caveat)
        spec = 'forall x: G ( !inbound(x) -> x = "a" )'
        r = verify_modular(
            open_relay, self.PROP, spec, DB, domain=DOMAIN,
            allow_nonstrict=True, observer="source",
            valuation_candidates={"x": ("a", "$f0")},
        )
        assert r.satisfied

    def test_spec_over_nested_env_channel_rejected(self):
        consumer = (
            PeerBuilder("C")
            .state("seen", 1)
            .nested_in_queue("feed", 1)
            .insert_rule("seen", ["x"], "?feed(x)")
            .build()
        )
        comp = Composition([consumer])
        with pytest.raises(VerificationError):
            verify_modular(comp, "G true", "G forall x: !feed(x) -> x = x",
                           {}, domain=DOMAIN)
