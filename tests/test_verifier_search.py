"""Tests for the nested-DFS emptiness search on synthetic products."""

import pytest

from repro.errors import VerificationError
from repro.verifier.search import SearchCancelled, find_accepting_lasso


class GraphProduct:
    """A hand-built product graph for exercising the search."""

    def __init__(self, edges, initial, accepting):
        self._edges = edges
        self._initial = initial
        self._accepting = set(accepting)

        class _Budget:
            max_product_nodes = 10_000

        class _Cache:
            budget = _Budget()

        self.cache = _Cache()

    def initial_nodes(self):
        return list(self._initial)

    def successors(self, node):
        return iter(self._edges.get(node, ()))

    def is_accepting(self, node):
        return node in self._accepting


class TestSearch:
    def test_simple_accepting_cycle(self):
        g = GraphProduct({0: [1], 1: [2], 2: [1]}, [0], [2])
        lasso, stats = find_accepting_lasso(g)
        assert lasso is not None
        assert lasso.cycle  # non-empty cycle
        assert 2 in lasso.cycle

    def test_self_loop(self):
        g = GraphProduct({0: [0]}, [0], [0])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None
        assert lasso.cycle == (0,)

    def test_accepting_not_on_cycle(self):
        g = GraphProduct({0: [1], 1: [2], 2: []}, [0], [1])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is None

    def test_cycle_without_accepting(self):
        g = GraphProduct({0: [1], 1: [0]}, [0], [])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is None

    def test_accepting_cycle_behind_non_accepting_one(self):
        g = GraphProduct(
            {0: [1, 2], 1: [0], 2: [3], 3: [2]}, [0], [3],
        )
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None
        assert 3 in lasso.cycle

    def test_lasso_structure_valid(self):
        edges = {0: [1], 1: [2, 4], 2: [3], 3: [1], 4: []}
        g = GraphProduct(edges, [0], [3])
        lasso, _ = find_accepting_lasso(g)
        nodes = list(lasso.prefix) + list(lasso.cycle)
        for a, b in zip(nodes, nodes[1:]):
            assert b in edges[a]
        assert lasso.cycle[0] in edges[lasso.cycle[-1]]

    def test_multiple_initial_nodes(self):
        g = GraphProduct({0: [], 1: [1]}, [0, 1], [1])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None

    def test_budget_exceeded(self):
        g = GraphProduct({i: [i + 1] for i in range(100)}, [0], [])
        with pytest.raises(VerificationError):
            find_accepting_lasso(g, max_nodes=5)

    def test_stats_counted(self):
        g = GraphProduct({0: [1], 1: []}, [0], [])
        lasso, stats = find_accepting_lasso(g)
        assert lasso is None
        assert stats.blue_visited == 2


class TestCooperativeCancellation:
    """Regression: ``should_stop`` polling must be loop-driven.

    The seed polled on ``stats.nodes_visited % INTERVAL == 0``; during
    postorder stretches (nodes stall at a non-multiple) the callback
    was never consulted, so a cancelled task could run to completion.
    Polling now uses a monotonic per-loop tick, which (a) fires on the
    very first iteration and (b) fires at least once every
    ``_STOP_POLL_INTERVAL`` iterations no matter how node counts move.
    """

    def test_immediate_stop_cancels_tiny_graph(self):
        # tiny graph: nodes_visited is 1 (not a multiple of 128) for the
        # whole search, so the seed's predicate never polled at all
        g = GraphProduct({0: [1], 1: [0]}, [0], [])
        with pytest.raises(SearchCancelled):
            find_accepting_lasso(g, should_stop=lambda: True)

    def test_stop_during_long_postorder(self):
        # a deep path explored down then popped back up: from the flip
        # point on, every iteration is a postorder pop and blue/red
        # counts no longer move
        depth = 600
        edges = {i: [i + 1] for i in range(depth)}
        edges[depth] = []
        polls = []

        def stop_after_three():
            polls.append(True)
            return len(polls) >= 3

        g = GraphProduct(edges, [0], [])
        with pytest.raises(SearchCancelled):
            find_accepting_lasso(g, should_stop=stop_after_three)
        # bounded latency: with tick-driven polling the callback fires
        # roughly every _STOP_POLL_INTERVAL iterations
        assert len(polls) == 3

    def test_red_search_polls_on_tick(self):
        # the accepting seed triggers a red DFS over the same deep path;
        # cancellation must interrupt it too
        depth = 400
        edges = {i: [i + 1] for i in range(depth)}
        edges[depth] = []
        seen_blue = []

        def stop_in_red():
            # let the blue DFS finish; cancel once red starts (red
            # searches poll with their own tick starting at 0)
            return len(seen_blue) > 0

        class RedProduct(GraphProduct):
            def is_accepting(self, node):
                if node == 0:
                    seen_blue.append(node)
                    return True
                return False

        g = RedProduct(edges, [0], [])
        with pytest.raises(SearchCancelled):
            find_accepting_lasso(g, should_stop=stop_in_red)

    def test_no_stop_callback_still_completes(self):
        g = GraphProduct({0: [1], 1: []}, [0], [])
        lasso, _ = find_accepting_lasso(g, should_stop=lambda: False)
        assert lasso is None
