"""Tests for the nested-DFS emptiness search on synthetic products."""

import pytest

from repro.errors import VerificationError
from repro.verifier.search import find_accepting_lasso


class GraphProduct:
    """A hand-built product graph for exercising the search."""

    def __init__(self, edges, initial, accepting):
        self._edges = edges
        self._initial = initial
        self._accepting = set(accepting)

        class _Budget:
            max_product_nodes = 10_000

        class _Cache:
            budget = _Budget()

        self.cache = _Cache()

    def initial_nodes(self):
        return list(self._initial)

    def successors(self, node):
        return iter(self._edges.get(node, ()))

    def is_accepting(self, node):
        return node in self._accepting


class TestSearch:
    def test_simple_accepting_cycle(self):
        g = GraphProduct({0: [1], 1: [2], 2: [1]}, [0], [2])
        lasso, stats = find_accepting_lasso(g)
        assert lasso is not None
        assert lasso.cycle  # non-empty cycle
        assert 2 in lasso.cycle

    def test_self_loop(self):
        g = GraphProduct({0: [0]}, [0], [0])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None
        assert lasso.cycle == (0,)

    def test_accepting_not_on_cycle(self):
        g = GraphProduct({0: [1], 1: [2], 2: []}, [0], [1])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is None

    def test_cycle_without_accepting(self):
        g = GraphProduct({0: [1], 1: [0]}, [0], [])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is None

    def test_accepting_cycle_behind_non_accepting_one(self):
        g = GraphProduct(
            {0: [1, 2], 1: [0], 2: [3], 3: [2]}, [0], [3],
        )
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None
        assert 3 in lasso.cycle

    def test_lasso_structure_valid(self):
        edges = {0: [1], 1: [2, 4], 2: [3], 3: [1], 4: []}
        g = GraphProduct(edges, [0], [3])
        lasso, _ = find_accepting_lasso(g)
        nodes = list(lasso.prefix) + list(lasso.cycle)
        for a, b in zip(nodes, nodes[1:]):
            assert b in edges[a]
        assert lasso.cycle[0] in edges[lasso.cycle[-1]]

    def test_multiple_initial_nodes(self):
        g = GraphProduct({0: [], 1: [1]}, [0, 1], [1])
        lasso, _ = find_accepting_lasso(g)
        assert lasso is not None

    def test_budget_exceeded(self):
        g = GraphProduct({i: [i + 1] for i in range(100)}, [0], [])
        with pytest.raises(VerificationError):
            find_accepting_lasso(g, max_nodes=5)

    def test_stats_counted(self):
        g = GraphProduct({0: [1], 1: []}, [0], [])
        lasso, stats = find_accepting_lasso(g)
        assert lasso is None
        assert stats.blue_visited == 2
