"""Tests for two-counter machines."""

import pytest

from repro.errors import SpecificationError
from repro.reductions import (
    CounterMachine, HALT, Inc, Test, count_up_down, diverging_machine,
    ping_pong_machine, run_machine, transfer_machine,
)


class TestValidation:
    def test_counter_range(self):
        with pytest.raises(SpecificationError):
            Inc(3, "q")

    def test_undefined_jump_target(self):
        with pytest.raises(SpecificationError):
            CounterMachine({"a": Inc(1, "nowhere")}, "a")

    def test_halt_may_be_target(self):
        CounterMachine({"a": Inc(1, HALT)}, "a")

    def test_halt_cannot_have_instruction(self):
        with pytest.raises(SpecificationError):
            CounterMachine({HALT: Inc(1, HALT)}, HALT)

    def test_initial_must_exist(self):
        with pytest.raises(SpecificationError):
            CounterMachine({"a": Inc(1, HALT)}, "b")


class TestInterpreter:
    def test_count_up_down_halts(self):
        r = run_machine(count_up_down(3))
        assert r.halted
        assert r.max_c1 == 3
        assert r.final_c1 == 0
        assert r.steps == 7  # 3 incs + 3 decs + final zero test

    def test_transfer_moves_counter(self):
        r = run_machine(transfer_machine(2))
        assert r.halted
        assert r.max_c1 == 2 and r.max_c2 == 2
        assert r.final_c1 == 0 and r.final_c2 == 0

    def test_diverging_hits_budget(self):
        r = run_machine(diverging_machine(), budget=50)
        assert not r.halted
        assert r.steps == 50
        assert r.max_c1 == 50

    def test_ping_pong_bounded_space(self):
        r = run_machine(ping_pong_machine(), budget=500)
        assert not r.halted
        assert r.peak_space <= 2

    def test_peak_space(self):
        r = run_machine(transfer_machine(3))
        assert r.peak_space == r.max_c1 + r.max_c2

    def test_states_listing(self):
        m = count_up_down(1)
        assert HALT in m.states()
