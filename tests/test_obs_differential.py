"""Observability must not change what the verifier computes.

Differential tests: running a verification with tracing + metrics
collection enabled yields exactly the same verdict, decisive
counterexample valuation, and aggregated ``product_nodes_visited`` as
the plain run -- for the sequential path and the 4-worker parallel
sweep.  (Phase timers and counters are always on; tracing is the only
observability feature with an on/off switch, so the pairs differ in
the most invasive configuration available.)
"""

import json

import pytest

from repro.fo import Instance
from repro.library import loan
from repro.obs import REGISTRY, configure_tracing
from repro.spec import Composition, PeerBuilder
from repro.verifier import verification_domain, verify


@pytest.fixture(autouse=True)
def _clean_obs():
    REGISTRY.reset()
    configure_tracing(None)
    yield
    REGISTRY.reset()
    configure_tracing(None)


def sender_receiver_case():
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": [("a",), ("b",)]})}
    return comp, dbs


def _cases():
    sr_comp, sr_dbs = sender_receiver_case()
    loan_comp = loan.loan_composition()
    return [
        ("sr-liveness", sr_comp, sr_dbs,
         "forall x: G( S.pick(x) -> F R.got(x) )", None, False),
        # two canonical valuations after candidate filtering, so
        # workers=4 genuinely takes the parallel sweep path
        ("loan-letter", loan_comp, loan.standard_database("fair"),
         loan.PROPERTY_LETTER_NEEDS_APPLICATION,
         loan.STANDARD_CANDIDATES, True),
    ]


CASES = _cases()


def _run(comp, dbs, prop, candidates, workers):
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    return verify(comp, prop, dbs, domain=dom,
                  valuation_candidates=candidates, workers=workers)


@pytest.mark.obs
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize(
    "label,comp,dbs,prop,candidates,expected",
    CASES, ids=[c[0] for c in CASES],
)
def test_observed_run_matches_plain_run(tmp_path, label, comp, dbs, prop,
                                        candidates, expected, workers):
    plain = _run(comp, dbs, prop, candidates, workers)

    trace_file = tmp_path / f"{label}-w{workers}.jsonl"
    configure_tracing(str(trace_file))
    observed = _run(comp, dbs, prop, candidates, workers)
    configure_tracing(None)

    assert plain.satisfied == expected, plain.summary()
    assert observed.verdict == plain.verdict
    assert (observed.stats.product_nodes_visited
            == plain.stats.product_nodes_visited)
    assert (observed.stats.valuations_checked
            == plain.stats.valuations_checked)
    if expected:
        assert observed.counterexample is None
    else:
        assert observed.counterexample is not None
        assert (observed.counterexample.valuation
                == plain.counterexample.valuation)

    # the observed run produced a non-trivial, well-formed trace
    events = [
        json.loads(line)
        for line in trace_file.read_text().splitlines() if line.strip()
    ]
    assert events[0]["name"] == "stream-start"
    assert any(ev["ph"] == "B" for ev in events)
    if workers > 1:
        # fork-started workers append to the same file
        assert len({ev["pid"] for ev in events}) > 1


@pytest.mark.parametrize("workers", [1, 4])
def test_stats_carry_phase_and_cache_breakdowns(workers):
    _, comp, dbs, prop, candidates, _ = CASES[1]
    result = _run(comp, dbs, prop, candidates, workers)
    stats = result.stats

    assert stats.phase_seconds, "no phase breakdown recorded"
    assert all(v >= 0 for v in stats.phase_seconds.values())
    assert "search" in stats.phase_seconds
    assert "expand" in stats.phase_seconds
    lookups = (stats.rule_cache.get("hits", 0)
               + stats.rule_cache.get("misses", 0))
    assert lookups > 0, "rule-cache counters not shipped back"
    assert stats.rule_cache_hit_rate is not None

    if workers > 1:
        assert stats.per_worker, "per-worker breakdown missing"
        for slot in stats.per_worker.values():
            assert slot["tasks"] >= 1
            assert slot["phase_seconds"]
        # every non-cancelled task is attributed to a worker
        assert all(t.worker for t in stats.per_task)
    else:
        assert stats.workers == 1

    # to_dict round-trips through JSON (the --metrics-json contract)
    assert json.loads(json.dumps(stats.to_dict())) == stats.to_dict()
