"""Tests for the travel-booking composition (nested offers)."""

import pytest

from repro.ib import is_input_bounded_composition
from repro.library.travel import (
    PROPERTY_BOOKING_CONFIRMED, PROPERTY_ITINERARY_CONFIRMED,
    PROPERTY_OFFERS_FROM_CATALOG, standard_database, travel_composition,
)
from repro.runtime import reachable_states
from repro.verifier import verification_domain, verify

CANDS = {"f": ("fl1",), "d": ("rome",), "r": ("rm1",)}


@pytest.fixture(scope="module")
def setup():
    comp = travel_composition()
    dbs = standard_database()
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    return comp, dbs, dom


class TestStructure:
    def test_closed(self):
        assert travel_composition().is_closed

    def test_nested_offer_channels(self):
        comp = travel_composition()
        assert comp.channel("flights").nested
        assert comp.channel("rooms").nested

    def test_input_bounded(self):
        assert is_input_bounded_composition(travel_composition())


class TestBehaviour:
    def test_offers_collected(self, setup):
        comp, dbs, dom = setup
        states = reachable_states(comp, dbs, dom.values, limit=300_000)
        offers = set()
        for s in states:
            offers |= s.data["Agency.flightOffers"]
        assert ("fl1", "rome") in offers

    def test_booking_reachable(self, setup):
        comp, dbs, dom = setup
        states = reachable_states(comp, dbs, dom.values, limit=300_000)
        booked = set()
        for s in states:
            booked |= s.data["Agency.booked"]
        assert ("fl1", "rome") in booked


class TestProperties:
    def test_itinerary_confirmed(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_ITINERARY_CONFIRMED, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert r.satisfied, r.summary()

    def test_offers_from_catalog(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_OFFERS_FROM_CATALOG, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert r.satisfied, r.summary()

    def test_booking_confirmation_fails_lossy(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_BOOKING_CONFIRMED, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert not r.satisfied
