"""Tests for the GPVW LTL -> Büchi translation.

The central correctness property: the translated automaton accepts an
ultimately periodic word iff the formula holds on it (checked against the
independent lasso-word evaluator, both by hand-picked cases and by
hypothesis).
"""

from hypothesis import given, settings, strategies as st

from repro.ltl import (
    LAnd, LOr, LRelease, LUntil, evaluate_on_word, latom, lbefore,
    lfinally, lglobally, limplies, lnext, lnot, ltl_to_buchi, luntil,
)

P, Q = latom("p"), latom("q")
EMPTY = frozenset()
ONLY_P = frozenset({"p"})
ONLY_Q = frozenset({"q"})
BOTH = frozenset({"p", "q"})

WORDS = [
    ([], [EMPTY]),
    ([], [ONLY_P]),
    ([], [ONLY_Q]),
    ([], [BOTH]),
    ([ONLY_P], [EMPTY]),
    ([EMPTY], [ONLY_P]),
    ([ONLY_P, ONLY_Q], [EMPTY]),
    ([], [ONLY_P, EMPTY]),
    ([BOTH, EMPTY], [ONLY_Q, ONLY_P]),
    ([EMPTY, EMPTY, ONLY_Q], [ONLY_P]),
]


def assert_equivalent(formula):
    nba = ltl_to_buchi(formula)
    for prefix, cycle in WORDS:
        expected = evaluate_on_word(formula, prefix, cycle)
        actual = nba.accepts_lasso(prefix, cycle)
        assert actual == expected, (
            f"{formula} on {prefix}+{cycle}^w: automaton={actual}, "
            f"semantics={expected}"
        )


class TestHandPicked:
    def test_atom(self):
        assert_equivalent(P)

    def test_negated_atom(self):
        assert_equivalent(lnot(P))

    def test_next(self):
        assert_equivalent(lnext(P))

    def test_until(self):
        assert_equivalent(luntil(P, Q))

    def test_release(self):
        assert_equivalent(LRelease(P, Q))

    def test_globally(self):
        assert_equivalent(lglobally(P))

    def test_finally(self):
        assert_equivalent(lfinally(P))

    def test_response(self):
        assert_equivalent(lglobally(limplies(P, lfinally(Q))))

    def test_before(self):
        assert_equivalent(lbefore(P, Q))

    def test_nested_until(self):
        assert_equivalent(luntil(P, luntil(Q, P)))

    def test_gf_vs_fg(self):
        assert_equivalent(lglobally(lfinally(P)))
        assert_equivalent(lfinally(lglobally(P)))

    def test_automaton_has_initial_state(self):
        nba = ltl_to_buchi(P)
        assert nba.initial
        assert nba.num_states() >= 2


_letters = st.sampled_from([EMPTY, ONLY_P, ONLY_Q, BOTH])


def _ltl(depth=2):
    base = st.sampled_from([P, Q, lnot(P), lnot(Q)])
    if depth == 0:
        return base
    sub = _ltl(depth - 1)
    return st.one_of(
        base,
        sub.map(lnext),
        st.tuples(sub, sub).map(lambda t: LAnd(*t)),
        st.tuples(sub, sub).map(lambda t: LOr(*t)),
        st.tuples(sub, sub).map(lambda t: LUntil(*t)),
        st.tuples(sub, sub).map(lambda t: LRelease(*t)),
        sub.map(lnot),
    )


@given(formula=_ltl(), prefix=st.lists(_letters, max_size=3),
       cycle=st.lists(_letters, min_size=1, max_size=3))
@settings(max_examples=120, deadline=None)
def test_translation_matches_word_semantics(formula, prefix, cycle):
    nba = ltl_to_buchi(formula)
    assert nba.accepts_lasso(prefix, cycle) == evaluate_on_word(
        formula, prefix, cycle
    )


@given(formula=_ltl(depth=1))
@settings(max_examples=60, deadline=None)
def test_formula_and_negation_partition_words(formula):
    """A ∪ ~A covers every word; A ∩ ~A covers none (on sample words)."""
    nba = ltl_to_buchi(formula)
    neg = ltl_to_buchi(lnot(formula))
    for prefix, cycle in WORDS[:6]:
        a = nba.accepts_lasso(prefix, cycle)
        b = neg.accepts_lasso(prefix, cycle)
        assert a != b
