"""Tests for the bench regression sentinel (repro.obs.bench).

The committed ``benchmarks/metrics`` trajectory must pass clean (that
is the CI gate's steady state), and a planted 2x ``wall_seconds`` entry
must trip it (that is the gate's reason to exist).
"""

import json
from pathlib import Path

import pytest

from repro.obs.bench import (
    DEFAULT_MAX_WALL_RATIO, DEFAULT_MIN_WALL_SECONDS, check_directory,
    check_entries, load_trajectories,
)

METRICS_DIR = Path(__file__).parent.parent / "benchmarks" / "metrics"


def _entry(case="c1", wall=1.0, recorded_at="2026-01-01T00:00:00+0000",
           verdict="SATISFIED", experiment="e1", **stats):
    base = {"valuations_checked": 8, "system_states": 40,
            "product_nodes_visited": 120, "nba_states_total": 3,
            "wall_seconds": wall}
    base.update(stats)
    return {
        "schema": "repro.metrics/1",
        "recorded_at": recorded_at,
        "experiment": experiment,
        "case": case,
        "verdict": verdict,
        "stats": base,
    }


def _dir_with(tmp_path, entries, name="BENCH_e1.json"):
    (tmp_path / name).write_text(json.dumps(entries))
    return tmp_path


class TestLoading:
    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_trajectories(tmp_path)

    def test_entries_stamped_with_origin(self, tmp_path):
        _dir_with(tmp_path, [_entry(), _entry()])
        rows = load_trajectories(tmp_path)
        assert [r["_origin"] for r in rows] == [
            ("BENCH_e1.json", 0), ("BENCH_e1.json", 1)]

    def test_non_list_file_raises(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            load_trajectories(tmp_path)


class TestSentinel:
    def test_stable_history_passes(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=1.1, recorded_at="2026-01-02T00:00:00+0000"),
            _entry(wall=0.9, recorded_at="2026-01-03T00:00:00+0000"),
        ])
        report = check_directory(d)
        assert report.ok
        assert report.entries == 3
        assert report.groups_checked == 1
        assert report.groups_new == 0

    def test_planted_2x_wall_fires(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=1.0, recorded_at="2026-01-02T00:00:00+0000"),
            _entry(wall=2.0, recorded_at="2026-01-03T00:00:00+0000"),
        ])
        report = check_directory(d)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "wall_seconds"
        assert reg.baseline == 1.0
        assert reg.latest == 2.0
        assert "2.00x" in reg.message

    def test_newest_by_recorded_at_not_file_position(self, tmp_path):
        # the slow entry sits first in the file but is newest by stamp
        d = _dir_with(tmp_path, [
            _entry(wall=5.0, recorded_at="2026-01-09T00:00:00+0000"),
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=1.0, recorded_at="2026-01-02T00:00:00+0000"),
        ])
        assert not check_directory(d).ok

    def test_noise_floor_absorbs_fast_cases(self, tmp_path):
        # 3x ratio but only 2ms absolute: jitter, not regression
        d = _dir_with(tmp_path, [
            _entry(wall=0.001, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=0.003, recorded_at="2026-01-02T00:00:00+0000"),
        ])
        assert check_directory(d).ok
        assert not check_directory(d, min_wall_seconds=0.0001).ok

    def test_ratio_threshold_is_tunable(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=1.4, recorded_at="2026-01-02T00:00:00+0000"),
        ])
        assert check_directory(d).ok  # 1.4x < default 1.5x
        assert not check_directory(d, max_wall_ratio=1.2).ok

    def test_baseline_is_median_not_worst(self, tmp_path):
        # one historic outlier must not mask a regression
        d = _dir_with(tmp_path, [
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=9.0, recorded_at="2026-01-02T00:00:00+0000"),
            _entry(wall=1.0, recorded_at="2026-01-03T00:00:00+0000"),
            _entry(wall=2.5, recorded_at="2026-01-04T00:00:00+0000"),
        ])
        report = check_directory(d)
        assert not report.ok
        assert report.regressions[0].baseline == 1.0

    def test_exact_metric_drift_fires(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(recorded_at="2026-01-01T00:00:00+0000"),
            _entry(recorded_at="2026-01-02T00:00:00+0000",
                   system_states=41),
        ])
        report = check_directory(d)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "system_states"
        assert (reg.baseline, reg.latest) == (40, 41)

    def test_noisy_history_skips_exact_check(self, tmp_path):
        # earlier entries disagree (e.g. a worker-count change):
        # no single expected value, so no drift verdict
        d = _dir_with(tmp_path, [
            _entry(recorded_at="2026-01-01T00:00:00+0000",
                   system_states=40),
            _entry(recorded_at="2026-01-02T00:00:00+0000",
                   system_states=44),
            _entry(recorded_at="2026-01-03T00:00:00+0000",
                   system_states=99),
        ])
        assert check_directory(d).ok

    def test_verdict_flip_fires(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(recorded_at="2026-01-01T00:00:00+0000"),
            _entry(recorded_at="2026-01-02T00:00:00+0000",
                   verdict="VIOLATED"),
        ])
        report = check_directory(d)
        (reg,) = report.regressions
        assert reg.metric == "verdict"
        assert "flipped" in reg.message

    def test_single_entry_groups_are_new(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(case="brand-new"),
            _entry(case="seen", recorded_at="2026-01-01T00:00:00+0000"),
            _entry(case="seen", recorded_at="2026-01-02T00:00:00+0000"),
        ])
        report = check_directory(d)
        assert report.ok
        assert report.groups_new == 1
        assert report.groups_checked == 1

    def test_entries_without_stats_are_tolerated(self):
        rows = [
            {"experiment": "e", "case": "c", "_origin": ("f", 0),
             "recorded_at": "2026-01-01T00:00:00+0000"},
            {"experiment": "e", "case": "c", "_origin": ("f", 1),
             "recorded_at": "2026-01-02T00:00:00+0000"},
        ]
        assert check_entries(rows).ok

    def test_report_serializes(self, tmp_path):
        d = _dir_with(tmp_path, [
            _entry(wall=1.0, recorded_at="2026-01-01T00:00:00+0000"),
            _entry(wall=4.0, recorded_at="2026-01-02T00:00:00+0000"),
        ])
        report = check_directory(d)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == "repro.bench-check/1"
        assert doc["ok"] is False
        assert doc["regressions"][0]["metric"] == "wall_seconds"
        rendered = report.render()
        assert "REGRESSION" in rendered
        assert "1 regression(s)" in rendered


@pytest.mark.skipif(not METRICS_DIR.is_dir(),
                    reason="no committed trajectory")
class TestCommittedTrajectory:
    def test_committed_trajectory_is_clean(self):
        """The repo's own BENCH_*.json must pass the default gate."""
        report = check_directory(METRICS_DIR,
                                 max_wall_ratio=DEFAULT_MAX_WALL_RATIO,
                                 min_wall_seconds=DEFAULT_MIN_WALL_SECONDS)
        assert report.ok, report.render()
        assert report.entries > 0
