"""Unit tests for terms and values."""

import pytest

from repro.fo import Const, Var, is_value, value_sort_key
from repro.fo.terms import term_sort_key


class TestVar:
    def test_str(self):
        assert str(Var("x")) == "x"

    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_hashable(self):
        assert len({Var("x"), Var("x"), Var("y")}) == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_rejects_leading_digit(self):
        with pytest.raises(ValueError):
            Var("1x")

    def test_underscore_allowed(self):
        assert Var("_tmp").name == "_tmp"


class TestConst:
    def test_str_quotes_strings(self):
        assert str(Const("approve")) == '"approve"'

    def test_str_numbers_bare(self):
        assert str(Const(42)) == "42"

    def test_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const("1")


class TestValues:
    def test_strings_and_ints_are_values(self):
        assert is_value("abc")
        assert is_value(0)
        assert is_value(-3)

    def test_bool_is_not_a_value(self):
        assert not is_value(True)

    def test_none_and_float_are_not_values(self):
        assert not is_value(None)
        assert not is_value(1.5)

    def test_sort_key_total_order_over_mixed(self):
        values = ["b", 2, "a", 1]
        ordered = sorted(values, key=value_sort_key)
        assert ordered == [1, 2, "a", "b"]

    def test_term_sort_key_vars_before_consts(self):
        terms = [Const("a"), Var("z"), Const(1), Var("a")]
        ordered = sorted(terms, key=term_sort_key)
        assert ordered[0] == Var("a")
        assert ordered[1] == Var("z")
