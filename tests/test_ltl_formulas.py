"""Tests for propositional LTL formulas, NNF, and lasso-word semantics."""

from hypothesis import given, settings, strategies as st

from repro.ltl import (
    LAnd, LAtom, LNot, LOr, LRelease, LUntil, atom_payloads,
    evaluate_on_word, land, latom, lbefore, lfinally, lglobally, limplies,
    lnext, lnot, lor, luntil, to_nnf,
)

P, Q = latom("p"), latom("q")
EMPTY = frozenset()
ONLY_P = frozenset({"p"})
ONLY_Q = frozenset({"q"})
BOTH = frozenset({"p", "q"})


class TestConstructors:
    def test_lnot_collapses(self):
        assert lnot(lnot(P)) == P

    def test_land_units(self):
        from repro.ltl import LTRUE, LFALSE
        assert land(P) == P
        assert land(LTRUE, P) == P
        assert land(LFALSE, P) == LFALSE
        assert land() == LTRUE

    def test_lor_units(self):
        from repro.ltl import LTRUE, LFALSE
        assert lor(LFALSE, P) == P
        assert lor(LTRUE, P) == LTRUE

    def test_atom_payloads(self):
        f = land(P, luntil(Q, lnext(P)))
        assert atom_payloads(f) == frozenset({"p", "q"})


class TestNNF:
    def test_not_until_becomes_release(self):
        f = to_nnf(lnot(LUntil(P, Q)))
        assert isinstance(f, LRelease)

    def test_not_release_becomes_until(self):
        f = to_nnf(lnot(LRelease(P, Q)))
        assert isinstance(f, LUntil)

    def test_de_morgan(self):
        f = to_nnf(lnot(LAnd(P, Q)))
        assert isinstance(f, LOr)
        assert all(isinstance(c, LNot) for c in (f.left, f.right))

    def test_negations_only_on_atoms(self):
        f = to_nnf(lnot(luntil(land(P, Q), lor(P, lnext(Q)))))
        for node in _walk(f):
            if isinstance(node, LNot):
                assert isinstance(node.body, LAtom)


def _walk(f):
    from repro.ltl import lchildren
    stack = [f]
    while stack:
        n = stack.pop()
        yield n
        stack.extend(lchildren(n))


class TestWordSemantics:
    def test_atom_at_position_zero(self):
        assert evaluate_on_word(P, [ONLY_P], [EMPTY])
        assert not evaluate_on_word(P, [EMPTY], [ONLY_P])

    def test_next(self):
        assert evaluate_on_word(lnext(P), [EMPTY, ONLY_P], [EMPTY])

    def test_next_wraps_into_cycle(self):
        assert evaluate_on_word(lnext(P), [EMPTY], [ONLY_P])

    def test_until(self):
        w = ([ONLY_P, ONLY_P, ONLY_Q], [EMPTY])
        assert evaluate_on_word(luntil(P, Q), *w)

    def test_until_requires_left_throughout(self):
        w = ([ONLY_P, EMPTY, ONLY_Q], [EMPTY])
        assert not evaluate_on_word(luntil(P, Q), *w)

    def test_finally(self):
        assert evaluate_on_word(lfinally(Q), [EMPTY, EMPTY], [ONLY_Q])
        assert not evaluate_on_word(lfinally(Q), [ONLY_P], [EMPTY])

    def test_globally(self):
        assert evaluate_on_word(lglobally(P), [ONLY_P], [BOTH])
        assert not evaluate_on_word(lglobally(P), [ONLY_P], [EMPTY])

    def test_globally_cycle_only(self):
        # prefix violates, so G fails even if cycle satisfies
        assert not evaluate_on_word(lglobally(P), [EMPTY], [ONLY_P])

    def test_before(self):
        # "p must hold before q fails": q holds until p arrives
        good = ([ONLY_Q, BOTH], [EMPTY])
        assert evaluate_on_word(lbefore(P, Q), *good)
        bad = ([ONLY_Q, EMPTY], [EMPTY])  # q fails before any p
        assert not evaluate_on_word(lbefore(P, Q), *bad)

    def test_implication(self):
        f = lglobally(limplies(P, Q))
        assert evaluate_on_word(f, [BOTH], [EMPTY])
        assert not evaluate_on_word(f, [ONLY_P], [EMPTY])


# -- property-based: NNF preserves word semantics ---------------------------

_letters = st.sampled_from([EMPTY, ONLY_P, ONLY_Q, BOTH])


def _ltl(depth=3):
    base = st.sampled_from([P, Q])
    if depth == 0:
        return base
    sub = _ltl(depth - 1)
    return st.one_of(
        base,
        sub.map(lnot),
        sub.map(lnext),
        st.tuples(sub, sub).map(lambda t: LAnd(*t)),
        st.tuples(sub, sub).map(lambda t: LOr(*t)),
        st.tuples(sub, sub).map(lambda t: LUntil(*t)),
        st.tuples(sub, sub).map(lambda t: LRelease(*t)),
    )


@given(formula=_ltl(), prefix=st.lists(_letters, max_size=4),
       cycle=st.lists(_letters, min_size=1, max_size=3))
@settings(max_examples=200, deadline=None)
def test_nnf_preserves_semantics(formula, prefix, cycle):
    assert evaluate_on_word(formula, prefix, cycle) == evaluate_on_word(
        to_nnf(formula), prefix, cycle
    )


@given(formula=_ltl(depth=2), prefix=st.lists(_letters, max_size=3),
       cycle=st.lists(_letters, min_size=1, max_size=3))
@settings(max_examples=200, deadline=None)
def test_negation_flips_semantics(formula, prefix, cycle):
    direct = evaluate_on_word(formula, prefix, cycle)
    negated = evaluate_on_word(lnot(formula), prefix, cycle)
    assert direct != negated
