"""Tests for global states and snapshot views."""

from repro.fo import Instance
from repro.runtime import (
    GlobalState, empty_queues, first_message, freeze_queues, last_message,
    snapshot_view,
)


def make_state(sender_receiver, **kw):
    defaults = dict(
        data=Instance({"S.items": [("a",)]}),
        queues=empty_queues(sender_receiver),
    )
    defaults.update(kw)
    return GlobalState(**defaults)


class TestGlobalState:
    def test_hashable_and_equal(self, sender_receiver):
        a = make_state(sender_receiver)
        b = make_state(sender_receiver)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_queue_lookup(self, sender_receiver):
        st = make_state(sender_receiver)
        assert st.queue("msg") == ()

    def test_with_queues(self, sender_receiver):
        st = make_state(sender_receiver)
        st2 = st.with_queues({"msg": (frozenset({("a",)}),)})
        assert st2.queue("msg")
        assert st.queue("msg") == ()  # original untouched

    def test_active_domain_includes_queues(self, sender_receiver):
        st = make_state(sender_receiver).with_queues(
            {"msg": (frozenset({("zz",)}),)}
        )
        assert "zz" in st.active_domain()
        assert "a" in st.active_domain()

    def test_total_queued_messages(self, sender_receiver):
        st = make_state(sender_receiver).with_queues(
            {"msg": (frozenset({("a",)}), frozenset({("b",)}))}
        )
        assert st.total_queued_messages() == 2


class TestMessageViews:
    def test_first_and_last(self):
        q = (frozenset({("x",)}), frozenset({("y",)}))
        assert first_message(q) == frozenset({("x",)})
        assert last_message(q) == frozenset({("y",)})
        assert first_message(()) == frozenset()
        assert last_message(()) == frozenset()


class TestSnapshotView:
    def test_queue_readings(self, sender_receiver):
        st = make_state(sender_receiver).with_queues(
            {"msg": (frozenset({("a",)}), frozenset({("b",)}))}
        )
        view = snapshot_view(st, sender_receiver)
        # receiver reads the first message, sender view is the last
        assert view["R.msg"] == frozenset({("a",)})
        assert view["S.msg"] == frozenset({("b",)})

    def test_empty_flag(self, sender_receiver):
        st = make_state(sender_receiver)
        view = snapshot_view(st, sender_receiver)
        assert view.truth("R.empty_msg")
        st2 = st.with_queues({"msg": (frozenset({("a",)}),)})
        assert not snapshot_view(st2, sender_receiver).truth("R.empty_msg")

    def test_received_flag(self, sender_receiver):
        st = GlobalState(
            data=Instance(),
            queues=freeze_queues({"msg": (frozenset({("a",)}),)}),
            mover="S",
            enqueued=frozenset({"msg"}),
        )
        view = snapshot_view(st, sender_receiver)
        assert view.truth("R.received_msg")

    def test_move_flags(self, sender_receiver):
        st = make_state(sender_receiver, mover="S")
        view = snapshot_view(st, sender_receiver)
        assert view.truth("move_S")
        assert not view.truth("move_R")

    def test_env_views_on_open_composition(self, open_relay):
        st = GlobalState(
            data=Instance(),
            queues=freeze_queues({
                "outbound": (frozenset({("a",)}),),
                "inbound": (frozenset({("b",)}),),
            }),
            mover="ENV",
        )
        view = snapshot_view(st, open_relay)
        # env consumes outbound (first) and feeds inbound (last)
        assert view["ENV.outbound"] == frozenset({("a",)})
        assert view["ENV.inbound"] == frozenset({("b",)})
        assert view.truth("move_ENV")
