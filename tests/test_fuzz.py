"""The scenario factory: generator, oracle harness, shrinker, CLI.

The load-bearing test is the *mutation* one: a deliberately buggy
verify hook (the seed engine's verdicts flipped) must be caught by the
engine-differential oracle and shrunk to a minimized, replayable
``.dws`` reproducer.  A fuzzer whose oracles cannot catch a planted bug
is just a random-spec pretty-printer.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.analysis import classify
from repro.cli import main
from repro.fuzz import (
    THEOREM_ROWS, fuzz, generate, minimize, run_case, shrink,
)
from repro.ltlfo.parser import parse_ltlfo
from repro.spec.dsl import compositions_equal, load_document
from repro.verifier import verify

ALL_ROWS = sorted(THEOREM_ROWS)


# -- generator ---------------------------------------------------------------


@pytest.mark.parametrize("row", ALL_ROWS)
def test_generator_hits_requested_row(row):
    """Every generated spec classifies into the theorem row it targets."""
    for seed in range(6):
        spec = generate(seed, row)
        sentences = [parse_ltlfo(text, spec.composition.schema)
                     for text in spec.properties.values()]
        classification = classify(spec.composition, sentences,
                                  spec.semantics)
        assert spec.matches_classification(classification), (
            f"seed {seed} row {row}: {classification.describe()}"
        )


def test_generator_rejects_unknown_row():
    with pytest.raises(ValueError, match="unknown theorem row"):
        generate(0, "9.9")


def test_generated_spec_is_replayable_text():
    spec = generate(3, "3.4")
    text = spec.to_dws()
    assert f"seed={spec.seed}" in text
    comp, dbs, props = load_document(text)
    assert compositions_equal(spec.composition, comp)
    assert dbs == spec.databases
    assert props == spec.properties


# -- oracle harness ----------------------------------------------------------


def test_fuzz_smoke_zero_violations():
    """A small campaign across two rows passes the whole oracle stack."""
    report = fuzz(count=4, seed=11, rows=("3.4", "3.7"))
    assert report.ok, report.summary()
    assert sum(1 for o in report.outcomes if o.verified) == 4
    assert "0 oracle violation(s)" in report.summary()


def test_unverifiable_row_runs_static_oracles_only():
    """Row 3.6 (undecidable, unbounded queues) is never swept."""
    spec = generate(0, "3.6")
    outcome = run_case(spec)
    assert outcome.ok, outcome.violations
    assert not outcome.verified


def _flip_seed_verdicts(comp, prop, dbs, **kwargs):
    """A planted engine bug: the seed engine reports violations as
    satisfied (dropping the counterexample), everything else honest."""
    result = verify(comp, prop, dbs, **kwargs)
    if kwargs.get("engine") == "seed" and not result.satisfied:
        return dataclasses.replace(
            result, satisfied=True, counterexample=None)
    return result


def test_mutation_caught_and_shrunk(tmp_path):
    """The differential oracle catches a planted seed-engine bug and
    the shrinker produces a minimized .dws reproducer."""
    report = fuzz(count=2, seed=0, rows=("3.4",),
                  corpus_dir=tmp_path, verify_hook=_flip_seed_verdicts)
    assert not report.ok, "planted bug escaped the oracle stack"
    failing = report.failures[0]
    assert "engine-differential" in failing.oracles_failed()

    # the corpus holds a minimized, replayable reproducer
    assert report.corpus_files
    for path in report.corpus_files:
        text = Path(path).read_text()
        comp, dbs, props = load_document(text)
        assert comp.peers and props
        assert "engine-differential" in text  # violation noted in header

    # minimization is strict: no smaller spec still trips the oracle
    minimized = minimize(failing, verify_hook=_flip_seed_verdicts)
    original = failing.spec
    orig_rules = sum(len(p.rules) for p in original.composition.peers)
    mini_rules = sum(len(p.rules) for p in minimized.composition.peers)
    assert len(minimized.composition.peers) <= len(
        original.composition.peers)
    assert mini_rules < orig_rules
    assert len(minimized.properties) == 1


def test_shrink_respects_predicate():
    """The shrinker never returns a spec the predicate rejects."""
    spec = generate(1, "3.4")
    minimized = shrink(spec, lambda s: len(s.composition.peers) >= 2)
    assert len(minimized.composition.peers) == 2


# -- CLI ---------------------------------------------------------------------


def test_cli_fuzz_smoke(tmp_path, capsys):
    code = main(["fuzz", "--count", "2", "--seed", "5", "--row", "3.4",
                 "--corpus", str(tmp_path),
                 "--metrics-json", str(tmp_path / "report.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 oracle violation(s)" in out
    assert (tmp_path / "report.json").exists()


def test_cli_fuzz_seed_from_env(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "5")
    code = main(["fuzz", "--count", "1", "--row", "3.7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "seed 5" in out


def test_cli_fuzz_rejects_unknown_row(capsys):
    code = main(["fuzz", "--row", "9.9"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown theorem row" in err


def test_cli_fuzz_rejects_bad_count(capsys):
    code = main(["fuzz", "--count", "0"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--count" in err
