"""The payments/chargeback and ride-hailing dispatch library domains.

Each domain documents two satisfied and two violated LTL-FO properties
(the violated ones are races the lossy semantics makes real).  The
verdicts must be identical under the ``seed`` engine, the ``shared``
engine, and a worker pool -- the same determinism contract the fuzzer
checks on random specs, pinned here on the curated ones.
"""

from __future__ import annotations

import pytest

from repro.library import dispatch, payments
from repro.runtime import validate_lasso
from repro.verifier import verification_domain, verify

PAYMENT_PROPERTIES = [
    (payments.PROPERTY_CAPTURE_CLEARED, True),
    (payments.PROPERTY_DISPUTE_HONEST, True),
    (payments.PROPERTY_REFUND_AFTER_CAPTURE, False),
    (payments.PROPERTY_PAYMENT_CAPTURED, False),
]

DISPATCH_PROPERTIES = [
    (dispatch.PROPERTY_OFFERS_FROM_FLEET, True),
    (dispatch.PROPERTY_TAKE_NEEDS_OFFER, True),
    (dispatch.PROPERTY_PICKUP_REQUESTED, False),
    (dispatch.PROPERTY_REQUEST_SERVED, False),
]


def _domain_case(name):
    if name == "payments":
        return (payments.payments_composition(),
                payments.standard_database(),
                payments.STANDARD_CANDIDATES, PAYMENT_PROPERTIES)
    return (dispatch.dispatch_composition(),
            dispatch.standard_database(),
            dispatch.STANDARD_CANDIDATES, DISPATCH_PROPERTIES)


@pytest.mark.parametrize("name", ["payments", "dispatch"])
def test_documented_verdicts(name):
    comp, dbs, candidates, expected = _domain_case(name)
    for prop, satisfied in expected:
        result = verify(comp, prop, dbs,
                        valuation_candidates=candidates)
        assert result.satisfied == satisfied, (
            f"{name}: {prop}: got {result.verdict}"
        )


@pytest.mark.parametrize("name", ["payments", "dispatch"])
def test_engines_and_workers_agree(name):
    """seed engine, shared engine, and a 2-worker pool: same answers."""
    comp, dbs, candidates, expected = _domain_case(name)
    for prop, _satisfied in expected:
        shared = verify(comp, prop, dbs,
                        valuation_candidates=candidates,
                        engine="shared")
        seeded = verify(comp, prop, dbs,
                        valuation_candidates=candidates, engine="seed")
        pooled = verify(comp, prop, dbs,
                        valuation_candidates=candidates, workers=2)
        for other in (seeded, pooled):
            assert other.verdict == shared.verdict
            assert (other.stats.valuations_checked
                    == shared.stats.valuations_checked)
            assert (other.stats.product_nodes_visited
                    == shared.stats.product_nodes_visited)
            if shared.counterexample is not None:
                assert (other.counterexample.valuation
                        == shared.counterexample.valuation)
                assert (other.counterexample.lasso
                        == shared.counterexample.lasso)


@pytest.mark.parametrize("name", ["payments", "dispatch"])
def test_counterexamples_replay(name):
    """Every violated property's lasso is a genuine lossy run."""
    comp, dbs, candidates, expected = _domain_case(name)
    domain = verification_domain(comp, [], dbs)
    for prop, satisfied in expected:
        if satisfied:
            continue
        result = verify(comp, prop, dbs,
                        valuation_candidates=candidates)
        assert result.counterexample is not None
        problems = validate_lasso(comp, dbs, domain.values,
                                  result.counterexample.lasso)
        assert not problems, problems


def test_domains_are_lintable_targets():
    """`repro lint payments|dispatch` stays green (CI smoke loop)."""
    from repro.cli import main
    assert main(["lint", "payments"]) == 0
    assert main(["lint", "dispatch"]) == 0
