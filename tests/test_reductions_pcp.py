"""Tests for PCP instances and the bounded solver."""

import pytest

from repro.errors import SpecificationError
from repro.reductions import (
    PCPInstance, SOLVABLE, UNSOLVABLE, enumerate_solutions, solve_bounded,
)


class TestInstance:
    def test_alphabet(self):
        assert SOLVABLE.alphabet() == frozenset({"a", "b"})

    def test_apply(self):
        top, bottom = SOLVABLE.apply([0, 1])
        assert top == "aab"
        assert bottom == "baaaa"

    def test_empty_pair_rejected(self):
        with pytest.raises(SpecificationError):
            PCPInstance((("", ""),))

    def test_no_pairs_rejected(self):
        with pytest.raises(SpecificationError):
            PCPInstance(())

    def test_empty_sequence_is_not_a_solution(self):
        assert not SOLVABLE.is_solution([])


class TestSolver:
    def test_solvable_instance_solved(self):
        solution = solve_bounded(SOLVABLE, max_length=8)
        assert solution is not None
        assert SOLVABLE.is_solution(solution)

    def test_unsolvable_instance(self):
        assert solve_bounded(UNSOLVABLE, max_length=10) is None

    def test_enumerate_finds_only_solutions(self):
        for sol in enumerate_solutions(SOLVABLE, max_length=6):
            assert SOLVABLE.is_solution(sol)

    def test_trivial_instance(self):
        inst = PCPInstance((("ab", "ab"),))
        assert solve_bounded(inst) == (0,)

    def test_prefix_pruning_correct(self):
        # an instance needing two tiles
        inst = PCPInstance((("a", "ab"), ("b", "")))
        sol = solve_bounded(inst, max_length=4)
        assert sol is not None
        assert inst.is_solution(sol)
