"""Tests for environment transitions of open compositions (Section 5)."""

from repro.runtime import environment_successors, initial_states
from repro.spec import DECIDABLE_DEFAULT, PERFECT_BOUNDED

DOMAIN = ("a", "b")


def init(open_relay, open_relay_db):
    states = initial_states(open_relay, open_relay_db, DOMAIN)
    return states[0]


class TestEnvironmentMoves:
    def test_closed_composition_has_no_env_moves(self, sender_receiver,
                                                 sender_receiver_db):
        st = initial_states(sender_receiver, sender_receiver_db, DOMAIN)[0]
        assert environment_successors(sender_receiver, st, DOMAIN,
                                      DECIDABLE_DEFAULT) == []

    def test_env_can_send_any_domain_tuple(self, open_relay, open_relay_db):
        st = init(open_relay, open_relay_db)
        succ = environment_successors(open_relay, st, DOMAIN,
                                      PERFECT_BOUNDED)
        messages = {
            s.queue("inbound") for s in succ if s.queue("inbound")
        }
        assert messages == {
            (frozenset({("a",)}),), (frozenset({("b",)}),),
        }

    def test_env_noop_included(self, open_relay, open_relay_db):
        st = init(open_relay, open_relay_db)
        succ = environment_successors(open_relay, st, DOMAIN,
                                      PERFECT_BOUNDED)
        assert any(
            not s.queue("inbound") and not s.enqueued for s in succ
        )

    def test_env_mover_is_flagged(self, open_relay, open_relay_db):
        st = init(open_relay, open_relay_db)
        succ = environment_successors(open_relay, st, DOMAIN,
                                      PERFECT_BOUNDED)
        assert all(s.mover == "ENV" for s in succ)

    def test_env_dequeues_consumed_channels(self, open_relay,
                                            open_relay_db):
        st = init(open_relay, open_relay_db)
        loaded = st.with_queues({
            "inbound": (), "outbound": (frozenset({("a",)}),),
        })
        succ = environment_successors(open_relay, loaded, DOMAIN,
                                      PERFECT_BOUNDED)
        assert any(not s.queue("outbound") for s in succ)
        assert any(s.queue("outbound") for s in succ)  # may also wait

    def test_env_does_not_send_into_full_queue(self, open_relay,
                                               open_relay_db):
        st = init(open_relay, open_relay_db)
        full = st.with_queues({
            "inbound": (frozenset({("a",)}),), "outbound": (),
        })
        succ = environment_successors(open_relay, full, DOMAIN,
                                      PERFECT_BOUNDED)  # bound 1
        assert all(len(s.queue("inbound")) == 1 for s in succ)
        assert all(not s.sent for s in succ)

    def test_one_action_mode_is_subset(self, open_relay, open_relay_db):
        st = init(open_relay, open_relay_db)
        full = environment_successors(open_relay, st, DOMAIN,
                                      PERFECT_BOUNDED)
        single = environment_successors(open_relay, st, DOMAIN,
                                        PERFECT_BOUNDED,
                                        one_action_per_move=True)
        assert set(single) <= set(full)

    def test_value_domain_restricts_messages(self, open_relay,
                                             open_relay_db):
        st = init(open_relay, open_relay_db)
        succ = environment_successors(open_relay, st, DOMAIN,
                                      PERFECT_BOUNDED,
                                      value_domain=("a",))
        messages = {
            s.queue("inbound") for s in succ if s.queue("inbound")
        }
        assert messages == {(frozenset({("a",)}),)}

    def test_nested_env_messages_bounded_rows(self):
        from repro.fo import Instance
        from repro.spec import Composition, PeerBuilder
        consumer = (
            PeerBuilder("C")
            .state("seen", 1)
            .nested_in_queue("feed", 1)
            .insert_rule("seen", ["x"], "?feed(x)")
            .build()
        )
        comp = Composition([consumer])
        st = initial_states(comp, {}, DOMAIN)[0]
        succ = environment_successors(comp, st, DOMAIN, PERFECT_BOUNDED,
                                      max_nested_rows=1)
        sizes = {
            len(s.queue("feed")[0]) for s in succ if s.queue("feed")
        }
        assert sizes == {0, 1}  # empty nested message and singletons
