"""Tests for Büchi automata: guards, products, emptiness, lassos."""

import pytest

from repro.errors import FormulaError
from repro.ltl import (
    BuchiAutomaton, Edge, GeneralizedBuchi, Guard, latom, lfinally,
    lglobally, lnot, ltl_to_buchi, ltl_to_generalized_buchi,
)

P = frozenset({"p"})
E = frozenset()


def inf_p_automaton():
    """Deterministic automaton for 'infinitely many p'."""
    return BuchiAutomaton(
        states={"n", "y"}, initial={"n"},
        edges=[
            Edge("n", Guard(pos=P), "y"), Edge("n", Guard(neg=P), "n"),
            Edge("y", Guard(pos=P), "y"), Edge("y", Guard(neg=P), "n"),
        ],
        accepting={"y"}, aps={"p"},
    )


class TestGuard:
    def test_satisfaction(self):
        g = Guard(pos=frozenset({"a"}), neg=frozenset({"b"}))
        assert g.satisfied(frozenset({"a"}))
        assert not g.satisfied(frozenset({"a", "b"}))
        assert not g.satisfied(frozenset())

    def test_satisfaction_cases(self):
        g = Guard(pos=frozenset({"a"}), neg=frozenset({"b"}))
        assert g.satisfied(frozenset({"a", "c"}))
        assert not g.satisfied(frozenset({"c"}))

    def test_true_guard(self):
        assert Guard().satisfied(frozenset())
        assert Guard().satisfied(frozenset({"x"}))

    def test_conjoin(self):
        a = Guard(pos=frozenset({"a"}))
        b = Guard(neg=frozenset({"b"}))
        c = a.conjoin(b)
        assert c is not None
        assert c.pos == frozenset({"a"}) and c.neg == frozenset({"b"})

    def test_conjoin_contradiction(self):
        a = Guard(pos=frozenset({"a"}))
        b = Guard(neg=frozenset({"a"}))
        assert a.conjoin(b) is None


class TestAutomatonBasics:
    def test_successors(self):
        a = inf_p_automaton()
        assert a.successors("n", P) == frozenset({"y"})
        assert a.successors("n", E) == frozenset({"n"})

    def test_unknown_edge_state_rejected(self):
        with pytest.raises(FormulaError):
            BuchiAutomaton({"a"}, {"a"}, [Edge("a", Guard(), "zz")],
                           set(), set())

    def test_alphabet_size(self):
        a = inf_p_automaton()
        assert len(list(a.alphabet())) == 2


class TestLassoMembership:
    def test_accepts_infinitely_many_p(self):
        a = inf_p_automaton()
        assert a.accepts_lasso([], [P])
        assert a.accepts_lasso([E, E], [P, E])

    def test_rejects_finitely_many_p(self):
        a = inf_p_automaton()
        assert not a.accepts_lasso([P, P], [E])

    def test_empty_cycle_rejected(self):
        with pytest.raises(FormulaError):
            inf_p_automaton().accepts_lasso([P], [])

    def test_run_dies(self):
        a = BuchiAutomaton(
            states={0}, initial={0},
            edges=[Edge(0, Guard(pos=P), 0)], accepting={0}, aps={"p"},
        )
        assert a.accepts_lasso([], [P])
        assert not a.accepts_lasso([], [E])


class TestEmptiness:
    def test_nonempty_finds_lasso(self):
        a = inf_p_automaton()
        lasso = a.find_accepting_lasso()
        assert lasso is not None
        prefix, cycle = lasso
        assert a.accepts_lasso(prefix, cycle)

    def test_empty_language(self):
        # accepting state unreachable
        a = BuchiAutomaton(
            states={0, 1}, initial={0},
            edges=[Edge(0, Guard(), 0)], accepting={1}, aps={"p"},
        )
        assert a.is_empty()

    def test_accepting_but_no_cycle(self):
        a = BuchiAutomaton(
            states={0, 1}, initial={0},
            edges=[Edge(0, Guard(), 1)], accepting={1}, aps={"p"},
        )
        assert a.is_empty()


class TestIntersection:
    def test_intersection_of_complementary_is_empty(self):
        f = lglobally(lfinally(latom("p")))
        a = ltl_to_buchi(f)
        b = ltl_to_buchi(lnot(f))
        assert a.intersection(b).is_empty()

    def test_intersection_nonempty(self):
        a = ltl_to_buchi(lfinally(latom("p")))
        b = ltl_to_buchi(lfinally(latom("q")))
        product = a.intersection(b)
        lasso = product.find_accepting_lasso()
        assert lasso is not None
        prefix, cycle = lasso
        seen = set()
        for letter in prefix + cycle:
            seen |= letter
        assert {"p", "q"} <= seen


class TestDegeneralization:
    def test_generalized_to_plain(self):
        gba = ltl_to_generalized_buchi(
            lglobally(lfinally(latom("p")))
        )
        nba = gba.degeneralize()
        assert nba.accepts_lasso([], [P])
        assert not nba.accepts_lasso([], [E])

    def test_no_acceptance_sets_means_all_accepting(self):
        gba = GeneralizedBuchi(
            states=frozenset({0}),
            initial=frozenset({0}),
            edges=(Edge(0, Guard(), 0),),
            acceptance_sets=(),
            aps=frozenset({"p"}),
        )
        nba = gba.degeneralize()
        assert nba.accepts_lasso([], [E])
