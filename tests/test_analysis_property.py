"""Property-based tests: the analyzer over synthetic compositions.

Two invariants, over every composition the synthetic generators can
produce:

1. ``lint_composition`` never raises and never reports error-severity
   diagnostics (the generators emit well-formed, input-bounded specs).
2. The lint report's IB verdict (presence of DWV0xx codes) agrees with
   ``repro.ib.check_composition``.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import Severity, classify, lint_composition
from repro.ib import check_composition
from repro.library.synthetic import relay_chain, relay_ring, wide_peer


compositions = st.one_of(
    st.integers(min_value=0, max_value=3).map(relay_chain),
    st.integers(min_value=1, max_value=3).map(relay_ring),
    st.integers(min_value=1, max_value=3).map(wide_peer),
)


@given(compositions)
@settings(max_examples=40, deadline=None)
def test_lint_never_crashes_and_reports_no_errors(composition):
    report = lint_composition(composition)
    assert not any(d.severity is Severity.ERROR
                   for d in report.diagnostics)
    assert report.passes_run[-1] == "decidability"


@given(compositions)
@settings(max_examples=40, deadline=None)
def test_lint_agrees_with_ib_checker(composition):
    ib_codes = {d.code for d in lint_composition(composition).diagnostics
                if d.code.startswith("DWV0")}
    violations = check_composition(composition)
    assert bool(ib_codes) == bool(violations)
    assert ib_codes == {v.code for v in violations}


@given(compositions)
@settings(max_examples=25, deadline=None)
def test_synthetic_specs_classify_decidable(composition):
    verdict = classify(composition)
    assert verdict.decidable
    assert verdict.theorem == "Theorem 3.4"
