"""Tests for the observability layer (repro.obs).

The golden-schema tests pin down the external formats -- the
``repro.trace/2`` JSONL event stream and the ``repro.metrics/2``
registry snapshot -- so downstream tooling can rely on them; they are
marked ``obs`` and run in tier-1.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS, Histogram, MetricsRegistry, REGISTRY,
    configure_tracing, counter, diff_numeric, gauge, histogram,
    merge_numeric, phase, phase_counts, phase_seconds, reset_for_worker,
    tracing_enabled,
)
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_obs():
    """Hermetic registry + disabled tracing around every test."""
    REGISTRY.reset()
    configure_tracing(None)
    yield
    REGISTRY.reset()
    configure_tracing(None)


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        c = counter("t.hits")
        c.inc()
        c.inc(4)
        assert counter("t.hits") is c
        assert c.value == 5

    def test_gauge_set_and_set_max(self):
        g = gauge("t.depth")
        g.set(3)
        g.set_max(2)
        assert g.value == 3
        g.set_max(7)
        assert g.value == 7

    def test_histogram_bucketing(self):
        h = Histogram("t.h", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # boundaries are inclusive upper bounds; 100.0 overflows
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("t.bad", boundaries=(2.0, 1.0))

    def test_default_time_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_TIME_BUCKETS)) == DEFAULT_TIME_BUCKETS

    def test_reset_clears_everything(self):
        counter("t.c").inc()
        gauge("t.g").set(1)
        histogram("t.h").observe(0.1)
        with phase("search"):
            pass
        REGISTRY.reset()
        snap = REGISTRY.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["phases"] == {}

    def test_merge_and_diff_numeric(self):
        into = {"a": 1, "b": 2.5}
        merge_numeric(into, {"a": 2, "c": 1})
        assert into == {"a": 3, "b": 2.5, "c": 1}
        delta = diff_numeric({"a": 3, "b": 2.5, "c": 1}, {"a": 1, "b": 2.5})
        assert delta == {"a": 2, "c": 1}

    def test_reset_for_worker_clears_registry(self):
        counter("t.c").inc()
        reset_for_worker()
        assert REGISTRY.snapshot()["counters"] == {}


@pytest.mark.obs
class TestMetricsSnapshotSchema:
    """Golden schema of the repro.metrics/2 registry snapshot."""

    def test_top_level_keys(self):
        snap = REGISTRY.snapshot()
        # no run-ledger context is active in tests, so no "run" key
        assert set(snap) == {
            "schema", "counters", "gauges", "histograms", "phases",
        }
        assert snap["schema"] == "repro.metrics/2"
        assert snap["schema"] == metrics_mod.SCHEMA

    def test_snapshot_is_json_able_and_sorted(self):
        counter("z.last").inc()
        counter("a.first").inc(2)
        histogram("h.times").observe(0.002)
        with phase("expand"):
            pass
        snap = REGISTRY.snapshot()
        # round-trips through JSON without a default= hook
        assert json.loads(json.dumps(snap)) == snap
        assert list(snap["counters"]) == ["a.first", "z.last"]
        hist = snap["histograms"]["h.times"]
        assert set(hist) == {"boundaries", "counts", "sum", "count"}
        assert len(hist["counts"]) == len(hist["boundaries"]) + 1
        assert set(snap["phases"]["expand"]) == {"seconds", "count"}


class TestPhaseTimers:
    def test_nested_phases_are_exclusive(self):
        """A child's time is not double-counted in its parent."""
        with phase("search"):
            time.sleep(0.02)
            with phase("expand"):
                time.sleep(0.04)
            time.sleep(0.02)
        seconds = phase_seconds()
        assert seconds["expand"] >= 0.04
        assert seconds["search"] >= 0.04
        # parent self-time excludes the child's 0.04s sleep
        assert seconds["search"] < 0.04 + 0.04
        total = sum(seconds.values())
        assert total == pytest.approx(0.08, abs=0.04)

    def test_phase_counts(self):
        for _ in range(3):
            with phase("rule-fire"):
                pass
        assert phase_counts()["rule-fire"] == 3

    def test_reentrant_same_phase(self):
        with phase("fo-eval"):
            with phase("fo-eval"):
                pass
        assert phase_counts()["fo-eval"] == 2
        assert phase_seconds()["fo-eval"] >= 0

    def test_phase_stack_is_thread_local(self):
        errors = []

        def work():
            try:
                with phase("search"):
                    time.sleep(0.01)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert phase_counts()["search"] == 4

    def test_exception_still_closes_phase(self):
        with pytest.raises(RuntimeError):
            with phase("search"):
                raise RuntimeError("boom")
        # a later phase works and the stack is balanced again
        with phase("expand"):
            pass
        assert phase_counts() == {"search": 1, "expand": 1}


def _read_events(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


@pytest.mark.obs
class TestTraceSchema:
    """Golden schema of the repro.trace/2 JSONL stream."""

    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_event_key_set(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        with phase("search"):
            with phase("expand"):
                pass
        trace_mod.instant("note", detail=1)
        configure_tracing(None)

        events = _read_events(path)
        assert events, "no events written"
        for ev in events:
            assert set(ev) <= {"ts", "pid", "tid", "ph", "name", "args"}
            assert {"ts", "pid", "tid", "ph", "name"} <= set(ev)
            assert ev["ph"] in {"B", "E", "I"}
            assert isinstance(ev["ts"], float)
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str)

    def test_stream_starts_with_schema_instant(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        configure_tracing(None)
        events = _read_events(path)
        assert events[0]["ph"] == "I"
        assert events[0]["name"] == "stream-start"
        assert events[0]["args"]["schema"] == "repro.trace/2"
        assert events[0]["args"]["schema"] == trace_mod.SCHEMA
        # the anchor pairs the monotonic ts with an epoch wall clock
        assert isinstance(events[0]["args"]["wall"], float)

    def test_spans_balanced_and_nested(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        with phase("search"):
            with phase("expand"):
                with phase("rule-fire"):
                    pass
            with phase("expand"):
                pass
        configure_tracing(None)

        streams = {}
        for ev in _read_events(path):
            streams.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        for key, events in streams.items():
            stack = []
            for ev in events:
                if ev["ph"] == "B":
                    stack.append(ev["name"])
                elif ev["ph"] == "E":
                    assert stack, f"E without B in stream {key}: {ev}"
                    assert stack.pop() == ev["name"], (
                        f"mismatched span nesting in stream {key}"
                    )
            assert stack == [], f"unbalanced spans in stream {key}: {stack}"

    def test_timestamps_nondecreasing_per_stream(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        for _ in range(5):
            with phase("translate"):
                pass
        configure_tracing(None)

        streams = {}
        for ev in _read_events(path):
            streams.setdefault((ev["pid"], ev["tid"]), []).append(ev["ts"])
        for stamps in streams.values():
            assert stamps == sorted(stamps)

    def test_disabling_stops_writes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        with phase("search"):
            pass
        configure_tracing(None)
        before = path.read_text()
        with phase("search"):
            pass
        trace_mod.instant("late")
        assert path.read_text() == before
