"""Tests for conversation protocols (Section 4)."""

import pytest

from repro.errors import FormulaError, SpecificationError
from repro.fo import Instance, Var, atom, parse_fo
from repro.ltl import BuchiAutomaton, Edge, Guard
from repro.protocols import (
    AgnosticProtocol, DataAwareProtocol, Observer, guards_from_formula,
    protocol_automaton, trace_of, verify_agnostic, verify_aware,
)
from repro.spec import (
    Composition, DECIDABLE_DEFAULT, PERFECT_BOUNDED, PeerBuilder,
)

DB = {"S": Instance({"items": [("a",)]})}


def ack_chain():
    """S --msg--> R --ack--> T, with R acking every received msg."""
    sender = (
        PeerBuilder("S")
        .database("items", 1).input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    relay = (
        PeerBuilder("R")
        .flat_in_queue("msg", 1).flat_out_queue("ack", 1)
        .send_rule("ack", ["x"], "?msg(x)")
        .build()
    )
    sink = (
        PeerBuilder("T")
        .flat_in_queue("ack", 1).state("done", 1)
        .insert_rule("done", ["x"], "?ack(x)")
        .build()
    )
    return Composition([sender, relay, sink])


class TestAgnosticConstruction:
    def test_from_ltl(self):
        p = AgnosticProtocol.from_ltl("G( msg -> F ack )")
        assert p.alphabet == frozenset({"msg", "ack"})

    def test_requires_exactly_one_spec(self):
        with pytest.raises(SpecificationError):
            AgnosticProtocol(alphabet=frozenset({"a"}))

    def test_ltl_with_variables_rejected(self):
        with pytest.raises(FormulaError):
            AgnosticProtocol.from_ltl("G msg(x)")

    def test_alphabet_must_cover_formula(self):
        with pytest.raises(SpecificationError):
            AgnosticProtocol.from_ltl("G msg", alphabet=frozenset({"ack"}))

    def test_letter_of_recipient_vs_source(self, sender_receiver,
                                           sender_receiver_db):
        from repro.runtime import initial_states, peer_successors
        st = initial_states(sender_receiver, sender_receiver_db, ("a",))
        sending = [
            s for s in st if s.data["S.pick"] == frozenset({("a",)})
        ][0]
        succ = peer_successors(sender_receiver, sending, "S", ("a",),
                               DECIDABLE_DEFAULT)
        dropped = [s for s in succ if "msg" in s.sent
                   and "msg" not in s.enqueued][0]
        recipient = AgnosticProtocol.from_ltl(
            "G ~msg", observer=Observer.RECIPIENT)
        source = AgnosticProtocol.from_ltl(
            "G ~msg", observer=Observer.SOURCE)
        assert recipient.letter_of(dropped) == frozenset()
        assert source.letter_of(dropped) == frozenset({"msg"})


class TestAgnosticVerification:
    def test_no_ack_before_msg_holds(self):
        comp = ack_chain()
        p = AgnosticProtocol.from_ltl("(~ack U msg) | G ~ack")
        r = verify_agnostic(comp, p, DB)
        assert r.satisfied

    def test_msg_eventually_acked_fails_lossy(self):
        comp = ack_chain()
        p = AgnosticProtocol.from_ltl("G( msg -> F ack )")
        r = verify_agnostic(comp, p, DB)
        assert not r.satisfied
        assert r.counterexample is not None

    def test_trace_of_counterexample_violates_protocol(self):
        from repro.ltl import evaluate_on_word, lnot
        comp = ack_chain()
        p = AgnosticProtocol.from_ltl("G( msg -> F ack )")
        r = verify_agnostic(comp, p, DB)
        prefix, cycle = trace_of(r.counterexample.lasso, p)
        assert evaluate_on_word(lnot(p.ltl), prefix, cycle)

    def test_buchi_given_protocol(self):
        # deterministic automaton for "no ack ever" -- violated
        auto = BuchiAutomaton(
            states={0}, initial={0},
            edges=[Edge(0, Guard(neg=frozenset({"ack"})), 0)],
            accepting={0}, aps={"ack"},
        )
        comp = ack_chain()
        p = AgnosticProtocol.from_buchi(auto)
        r = verify_agnostic(comp, p, DB, semantics=PERFECT_BOUNDED)
        assert not r.satisfied

    def test_unknown_channel_rejected(self):
        comp = ack_chain()
        p = AgnosticProtocol.from_ltl("G nosuch")
        with pytest.raises(Exception):
            verify_agnostic(comp, p, DB)

    def test_observer_at_source_detects_lost_sends(self):
        comp = ack_chain()
        # every send into msg is observed at the source, even if dropped:
        # under the source semantics 'G ~msg' is violated by any send
        p_src = AgnosticProtocol.from_ltl("G ~msg", observer=Observer.SOURCE)
        r = verify_agnostic(comp, p_src, DB)
        assert not r.satisfied


class TestDataAware:
    def test_symbols_checked(self):
        from repro.ltl import latom
        with pytest.raises(SpecificationError):
            DataAwareProtocol(symbols={}, ltl=latom("sigma"))

    def test_aware_protocol_holds(self):
        from repro.ltl import latom, lglobally, lnot
        comp = ack_chain()
        # messages never carry the content "zz" (not in the database)
        protocol = DataAwareProtocol(
            symbols={"bad_msg": parse_fo('S.msg("zz")', comp.schema)},
            ltl=lglobally(lnot(latom("bad_msg"))),
        )
        r = verify_aware(comp, protocol, DB)
        assert r.satisfied

    def test_aware_protocol_with_free_variables(self):
        from repro.ltl import latom, lfinally, lglobally, limplies
        comp = ack_chain()
        # every message content x is eventually acked with x: fails lossy
        protocol = DataAwareProtocol(
            symbols={
                "m": parse_fo("S.msg(x)", comp.schema),
                "k": parse_fo("R.ack(x)", comp.schema),
            },
            ltl=lglobally(limplies(latom("m"), lfinally(latom("k")))),
        )
        r = verify_aware(comp, protocol, DB)
        assert not r.satisfied
        assert r.counterexample.valuation == {"x": "a"}

    def test_aware_protocol_via_buchi_automaton(self):
        comp = ack_chain()
        # deterministic automaton: bad_msg never appears
        auto = BuchiAutomaton(
            states={0}, initial={0},
            edges=[Edge(0, Guard(neg=frozenset({"bad_msg"})), 0)],
            accepting={0}, aps={"bad_msg"},
        )
        protocol = DataAwareProtocol(
            symbols={"bad_msg": parse_fo('S.msg("zz")', comp.schema)},
            automaton=auto,
        )
        r = verify_aware(comp, protocol, DB, semantics=PERFECT_BOUNDED)
        assert r.satisfied


class TestGuardExpansion:
    def test_guards_from_formula(self):
        f = parse_fo("a | ~b")
        guards = guards_from_formula(f, frozenset({"a", "b"}))
        sat = set()
        for letter in [frozenset(), frozenset({"a"}), frozenset({"b"}),
                       frozenset({"a", "b"})]:
            if any(g.satisfied(letter) for g in guards):
                sat.add(letter)
        assert sat == {frozenset(), frozenset({"a"}),
                       frozenset({"a", "b"})}

    def test_protocol_automaton_builder(self):
        auto = protocol_automaton(
            states={0, 1}, initial={0},
            transitions=[
                (0, "~req", 0), (0, "req", 1),
                (1, "rep", 0), (1, "~rep", 1),
            ],
            accepting={0},
            alphabet=frozenset({"req", "rep"}),
        )
        REQ, REP = frozenset({"req"}), frozenset({"rep"})
        assert auto.accepts_lasso([], [REQ, REP])
        assert not auto.accepts_lasso([REQ], [frozenset()])
