"""Tests for the input-boundedness checker (Section 3.1)."""

import pytest

from repro.errors import InputBoundednessError
from repro.fo import RelationKind, RelationSymbol, Schema, parse_fo
from repro.ib import (
    check_composition, check_formula, check_peer, check_sentence,
    is_input_bounded_composition, require_input_bounded, summarize,
)
from repro.ltlfo import parse_ltlfo
from repro.spec import Composition, PeerBuilder


def make_schema():
    return Schema([
        RelationSymbol("db", 2, RelationKind.DATABASE),
        RelationSymbol("inp", 2, RelationKind.INPUT),
        RelationSymbol("prev_inp", 2, RelationKind.PREV_INPUT),
        RelationSymbol("st", 2, RelationKind.STATE),
        RelationSymbol("act", 1, RelationKind.ACTION),
        RelationSymbol("fq", 2, RelationKind.IN_QUEUE),
        RelationSymbol("nq", 2, RelationKind.IN_QUEUE, nested=True),
        RelationSymbol("fout", 1, RelationKind.OUT_QUEUE),
    ])


class TestFormulaCheck:
    def setup_method(self):
        self.schema = make_schema()

    def check(self, text, strict=False):
        return check_formula(parse_fo(text, self.schema), self.schema,
                             strict=strict)

    def test_quantifier_free_ok(self):
        assert self.check("st(x, y) & inp(x, y)") == []

    def test_input_guarded_exists_ok(self):
        assert self.check("exists x, y: inp(x, y) & db(x, y)") == []

    def test_prev_input_guard_ok(self):
        assert self.check("exists x, y: prev_inp(x, y) & db(x, y)") == []

    def test_flat_queue_guard_ok(self):
        assert self.check("exists x, y: fq(x, y) & db(x, y)") == []

    def test_flat_out_queue_guard_ok(self):
        assert self.check("exists x: fout(x) & db(x, x)") == []

    def test_db_guard_ok_in_liberal_mode(self):
        assert self.check("exists x: db(x, x)") == []

    def test_db_guard_rejected_in_strict_mode(self):
        assert self.check("exists x: db(x, x)", strict=True)

    def test_nested_queue_guard_rejected(self):
        assert self.check("exists x, y: nq(x, y)")

    def test_unguarded_exists_rejected(self):
        assert self.check("exists x: x = x")

    def test_guard_must_cover_all_variables(self):
        # inp(x, x) covers only x; nothing guards y
        violations = self.check("exists x, y: inp(x, x) & x = y")
        assert violations

    def test_quantified_var_in_state_atom_rejected(self):
        violations = self.check("exists x, y: inp(x, y) & st(x, y)")
        assert violations
        assert "state" in violations[0].reason

    def test_quantified_var_in_action_atom_rejected(self):
        assert self.check("exists x, y: inp(x, y) & act(x)")

    def test_quantified_var_in_nested_queue_atom_rejected(self):
        assert self.check("exists x, y: inp(x, y) & nq(x, y)")

    def test_forall_guarded_implication_ok(self):
        assert self.check("forall x, y: inp(x, y) -> db(x, y)") == []

    def test_forall_without_implication_rejected(self):
        assert self.check("forall x, y: inp(x, y) & db(x, y)")

    def test_free_variables_unrestricted(self):
        # free variables may appear in state atoms (closure vars of
        # properties do, cf. Example 3.2)
        assert self.check("st(a, b) & act(a)") == []

    def test_nested_quantifiers(self):
        text = ("exists x, y: inp(x, y) & "
                "(forall u, w: prev_inp(u, w) -> db(u, w))")
        assert self.check(text) == []


class TestPeerCheck:
    def test_compliant_peer(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).input("i", 1).state("s", 1)
            .flat_out_queue("q", 1)
            .input_rule("i", ["x"], "d(x)")
            .insert_rule("s", ["x"], "exists y: i(y) & d(x)")
            .send_rule("q", ["x"], "i(x)")
            .build()
        )
        assert check_peer(peer) == []

    def test_input_rule_must_be_exists_star(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).input("i", 1)
            .input_rule("i", ["x"], "forall y: d(y) -> d(x)")
            .build()
        )
        violations = check_peer(peer)
        assert any("exists*" in v.reason for v in violations)

    def test_input_rule_state_atoms_must_be_ground(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).input("i", 1).state("s", 1)
            .input_rule("i", ["x"], "d(x) & s(x)")
            .build()
        )
        violations = check_peer(peer)
        assert any("ground" in v.reason for v in violations)

    def test_input_rule_ground_state_atom_ok(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).input("i", 1).state("flag", 0)
            .input_rule("i", ["x"], "d(x) & ~flag")
            .build()
        )
        assert check_peer(peer) == []

    def test_flat_send_rule_checked_as_exists_star(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).state("s", 1).flat_out_queue("q", 1)
            .send_rule("q", ["x"], "d(x) & s(x)")
            .build()
        )
        assert check_peer(peer)

    def test_nested_send_rule_checked_as_input_bounded(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).state("s", 1).nested_out_queue("q", 1)
            .send_rule("q", ["x"], "d(x) & s(x)")   # no quantifier: fine
            .build()
        )
        assert check_peer(peer) == []


class TestSentenceCheck:
    def test_closure_vars_exempt(self):
        schema = make_schema()
        s = parse_ltlfo("forall x, y: G( st(x, y) -> F act(x) )", schema)
        assert check_sentence(s, schema) == []

    def test_payload_quantifier_checked(self):
        schema = make_schema()
        s = parse_ltlfo("G (exists x, y: nq(x, y))", schema)
        assert check_sentence(s, schema)


class TestCompositionCheck:
    def test_loan_composition_is_input_bounded(self):
        from repro.library.loan import loan_composition
        assert is_input_bounded_composition(loan_composition())
        assert is_input_bounded_composition(loan_composition(gated=False))

    def test_require_raises_with_diagnostics(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).state("s", 1).flat_out_queue("q", 1)
            .send_rule("q", ["x"], "d(x) & s(x)")
            .build()
        )
        comp = Composition([peer])
        with pytest.raises(InputBoundednessError) as err:
            require_input_bounded(comp)
        assert err.value.violations

    def test_summarize(self):
        assert "no violations" in summarize([])
