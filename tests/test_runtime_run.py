"""Tests for runs, lassos, simulation, and reachability."""

import pytest

from repro.errors import SimulationError
from repro.runtime import Lasso, reachable_states, simulate
from repro.runtime.state import GlobalState
from repro.fo import Instance
from repro.spec import DECIDABLE_DEFAULT, PERFECT_BOUNDED

DOMAIN = ("a",)


def state(tag):
    return GlobalState(
        data=Instance({"t": [(tag,)]}), queues=(), mover=None,
    )


class TestLasso:
    def test_snapshot_indexing(self):
        lasso = Lasso((state("p0"), state("p1")), (state("c0"), state("c1")))
        assert lasso.snapshot(0) == state("p0")
        assert lasso.snapshot(1) == state("p1")
        assert lasso.snapshot(2) == state("c0")
        assert lasso.snapshot(3) == state("c1")
        assert lasso.snapshot(4) == state("c0")  # wraps

    def test_empty_cycle_rejected(self):
        with pytest.raises(SimulationError):
            Lasso((), ())

    def test_active_domain(self):
        lasso = Lasso((state("p"),), (state("c"),))
        assert lasso.active_domain() == frozenset({"p", "c"})

    def test_len(self):
        lasso = Lasso((state("p"),), (state("c"),))
        assert len(lasso) == 2


class TestSimulate:
    def test_length(self, sender_receiver, sender_receiver_db):
        trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                         steps=5, seed=1)
        assert len(trace) == 6

    def test_deterministic_with_seed(self, sender_receiver,
                                     sender_receiver_db):
        t1 = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                      steps=10, seed=7)
        t2 = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                      steps=10, seed=7)
        assert t1 == t2

    def test_movers_alternate_among_peers(self, sender_receiver,
                                          sender_receiver_db):
        trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                         steps=30, seed=3)
        movers = {s.mover for s in trace[1:]}
        assert movers <= {"S", "R"}

    def test_steering_callback(self, sender_receiver, sender_receiver_db):
        def prefer_sender(options):
            for o in options:
                if o.mover in (None, "S"):
                    return o
            return options[0]

        trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                         steps=4, choose=prefer_sender)
        assert all(s.mover in (None, "S") for s in trace)


class TestReachability:
    def test_reachable_states_closed(self, sender_receiver,
                                     sender_receiver_db):
        states = reachable_states(sender_receiver, sender_receiver_db,
                                  DOMAIN, semantics=PERFECT_BOUNDED)
        # finite and contains a state where R stored the value
        assert any(
            s.data["R.got"] == frozenset({("a",)}) for s in states
        )

    def test_limit_enforced(self, sender_receiver, sender_receiver_db):
        with pytest.raises(SimulationError):
            reachable_states(sender_receiver, sender_receiver_db, DOMAIN,
                             limit=2)

    def test_lossy_superset_of_nothing(self, sender_receiver,
                                       sender_receiver_db):
        lossy = reachable_states(sender_receiver, sender_receiver_db,
                                 DOMAIN, semantics=DECIDABLE_DEFAULT)
        perfect = reachable_states(sender_receiver, sender_receiver_db,
                                   DOMAIN, semantics=PERFECT_BOUNDED)
        # every perfect-channel state is also lossy-reachable (losing
        # nothing is one of the lossy branches)
        assert perfect <= lossy
