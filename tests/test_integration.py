"""Cross-module integration tests: whole-pipeline sanity and consistency
properties that cut across the runtime, the verifier and the protocols."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fo import Instance
from repro.ltl import evaluate_on_word, lnot
from repro.ltlfo import parse_ltlfo
from repro.protocols import AgnosticProtocol, trace_of, verify_agnostic
from repro.runtime import reachable_states, simulate, snapshot_view
from repro.spec import (
    ChannelSemantics, DECIDABLE_DEFAULT, PERFECT_BOUNDED,
)
from repro.verifier import (
    SnapshotEvaluator, TransitionCache, verification_domain, verify,
)

DB = {"S": Instance({"items": [("a",)]})}
DOMAIN = ("a", "$f")


class TestVerifierVsSimulation:
    """Any simulated run must satisfy every verified property."""

    def test_verified_invariant_holds_on_random_runs(self, sender_receiver):
        prop = parse_ltlfo("forall x: G( R.got(x) -> S.items(x) )",
                           sender_receiver.schema)
        result = verify(sender_receiver, prop, DB)
        assert result.satisfied
        dom = verification_domain(sender_receiver, [prop], DB)
        payload = prop.fo_payloads()
        for seed in range(5):
            trace = simulate(sender_receiver, DB, dom.values, steps=15,
                             seed=seed)
            from repro.fo import evaluate
            for state in trace:
                view = snapshot_view(state, sender_receiver)
                for row in view["R.got"]:
                    assert row in view["S.items"]

    def test_counterexample_violates_on_word_level(self, sender_receiver):
        sentence = parse_ltlfo("forall x: G( S.pick(x) -> F R.got(x) )",
                               sender_receiver.schema)
        result = verify(sender_receiver, sentence, DB)
        assert not result.satisfied
        cex = result.counterexample
        from repro.fo.terms import Var
        valuation = {Var(k): v for k, v in cex.valuation.items()}
        body = sentence.instantiate(valuation)
        dom = verification_domain(sender_receiver, [sentence], DB)
        evaluator = SnapshotEvaluator(
            sender_receiver, dom.values,
            frozenset(a for a in _payloads(body)),
        )
        prefix = [evaluator.letter(s) for s in cex.lasso.prefix]
        cycle = [evaluator.letter(s) for s in cex.lasso.cycle]
        assert evaluate_on_word(lnot(body), prefix, cycle)


def _payloads(body):
    from repro.ltl import LAtom, lwalk
    return {n.ap for n in lwalk(body) if isinstance(n, LAtom)}


class TestSemanticsMonotonicity:
    def test_perfect_reachable_subset_of_lossy(self, sender_receiver):
        lossy = reachable_states(sender_receiver, DB, DOMAIN,
                                 semantics=DECIDABLE_DEFAULT)
        perfect = reachable_states(sender_receiver, DB, DOMAIN,
                                   semantics=PERFECT_BOUNDED)
        assert perfect <= lossy

    def test_bigger_queue_bound_superset(self, sender_receiver):
        k1 = reachable_states(
            sender_receiver, DB, DOMAIN,
            semantics=ChannelSemantics(lossy=False, queue_bound=1),
        )
        k2 = reachable_states(
            sender_receiver, DB, DOMAIN,
            semantics=ChannelSemantics(lossy=False, queue_bound=2),
        )
        # every 1-bounded state is also 2-bounded reachable
        assert len(k2) >= len(k1)


class TestProtocolVsLtlfoConsistency:
    def test_agnostic_protocol_matches_ltlfo_on_loan(self):
        """The agnostic G(getRating -> F rating) protocol of Example 4.1
        fails under lossy channels, like its LTL-FO counterpart."""
        from repro.library.loan import loan_composition, standard_database
        comp = loan_composition()
        dbs = standard_database("fair")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        protocol = AgnosticProtocol.from_ltl("G( getRating -> F rating )")
        r = verify_agnostic(comp, protocol, dbs, domain=dom)
        assert not r.satisfied
        prefix, cycle = trace_of(r.counterexample.lasso, protocol)
        assert evaluate_on_word(lnot(protocol.ltl), prefix, cycle)

    def test_agnostic_protocol_holds_perfect_gated(self):
        """Under perfect channels the loan composition answers every
        rating request (the gated applicant applies once)."""
        from repro.library.loan import loan_composition, standard_database
        comp = loan_composition()
        dbs = standard_database("excellent")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        protocol = AgnosticProtocol.from_ltl(
            "G( rating -> (~rating U getRating) | F getRating ) | G ~rating"
        )
        # weaker sanity protocol: a rating is only ever enqueued after
        # some getRating was enqueued first
        protocol = AgnosticProtocol.from_ltl("(~rating U getRating) | G ~rating")
        r = verify_agnostic(comp, protocol, dbs, domain=dom,
                            semantics=PERFECT_BOUNDED)
        assert r.satisfied


class TestSharedTransitionCache:
    def test_cache_reused_across_properties(self, sender_receiver):
        dom = verification_domain(sender_receiver, [], DB)
        cache = TransitionCache(sender_receiver, DB, dom.values,
                                DECIDABLE_DEFAULT)
        r1 = verify(sender_receiver, "G true", DB, domain=dom,
                    transition_cache=cache)
        states_after_first = cache.states_expanded
        r2 = verify(sender_receiver,
                    "forall x: G( R.got(x) -> S.items(x) )", DB,
                    domain=dom, transition_cache=cache)
        assert r1.satisfied and r2.satisfied
        assert cache.states_expanded >= states_after_first
