"""Property-based tests (hypothesis) for the FO evaluator and the
valuation canonicalizer.

Two independently implemented evaluators must agree on random formulas
over random small instances: the production satisfying-binding-set
evaluator (:func:`repro.fo.evaluator.evaluate`) and the textbook
brute-force one (:func:`repro.fo.evaluator.evaluate_naive`).  The same
instances also check :func:`answers` against direct enumeration.

For :mod:`repro.verifier.domain`, the symmetry canonicalization must
actually be canonical: ``canonical_valuations`` enumerates exactly the
fixpoints of :func:`canonicalize_valuation`, and the representative of
a valuation is invariant under any permutation of the fresh values.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.fo.evaluator import answers, evaluate, evaluate_naive
from repro.fo.formulas import (
    And, Atom, Eq, Exists, Forall, Implies, Not, Or, TrueF,
)
from repro.fo.instance import Instance
from repro.fo.terms import Const, Var
from repro.verifier.domain import (
    VerificationDomain, canonical_valuations, canonicalize_valuation,
)

DOMAIN = ("a", "b", "c")
VAR_NAMES = ("x", "y", "z")

# -- formula strategy -------------------------------------------------------

terms = st.one_of(
    st.sampled_from([Var(n) for n in VAR_NAMES]),
    st.sampled_from([Const(v) for v in DOMAIN]),
)


def atoms():
    unary = st.tuples(terms).map(lambda t: Atom("S", t))
    binary = st.tuples(terms, terms).map(lambda t: Atom("R", t))
    eq = st.tuples(terms, terms).map(lambda t: Eq(t[0], t[1]))
    return st.one_of(unary, binary, eq, st.just(TrueF()))


def formulas():
    quantified_vars = st.lists(
        st.sampled_from([Var(n) for n in VAR_NAMES]),
        min_size=1, max_size=2, unique=True,
    ).map(tuple)
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(And),
            st.tuples(children, children).map(Or),
            st.tuples(children, children).map(
                lambda p: Implies(p[0], p[1])
            ),
            st.tuples(quantified_vars, children).map(
                lambda p: Exists(p[0], p[1])
            ),
            st.tuples(quantified_vars, children).map(
                lambda p: Forall(p[0], p[1])
            ),
        ),
        max_leaves=6,
    )


rows1 = st.frozensets(
    st.tuples(st.sampled_from(DOMAIN)), max_size=3
)
rows2 = st.frozensets(
    st.tuples(st.sampled_from(DOMAIN), st.sampled_from(DOMAIN)), max_size=4
)
instances = st.builds(
    lambda s, r: Instance({"S": s, "R": r}), rows1, rows2
)
full_envs = st.fixed_dictionaries(
    {n: st.sampled_from(DOMAIN) for n in VAR_NAMES}
)


@settings(max_examples=120, deadline=None)
@given(formula=formulas(), inst=instances, env=full_envs)
def test_evaluator_agrees_with_naive(formula, inst, env):
    assert evaluate(formula, inst, DOMAIN, env) == \
        evaluate_naive(formula, inst, DOMAIN, env), (
            f"evaluators disagree on {formula} over {dict(env)}"
        )


@settings(max_examples=60, deadline=None)
@given(formula=formulas(), inst=instances)
def test_answers_agree_with_naive_enumeration(formula, inst):
    head = tuple(Var(n) for n in VAR_NAMES)
    got = answers(formula, head, inst, DOMAIN)
    expected = frozenset(
        combo
        for combo in itertools.product(DOMAIN, repeat=len(head))
        if evaluate_naive(formula, inst, DOMAIN,
                          dict(zip(VAR_NAMES, combo)))
    )
    assert got == expected


# -- canonicalization -------------------------------------------------------

domains = st.builds(
    VerificationDomain,
    st.just(("k1", "k2")),
    st.sampled_from([("$v0",), ("$v0", "$v1"), ("$v0", "$v1", "$v2")]),
)
variable_tuples = st.sampled_from([
    (Var("x"),), (Var("x"), Var("y")), (Var("x"), Var("y"), Var("z")),
])


@st.composite
def domain_vars_valuation(draw):
    domain = draw(domains)
    variables = draw(variable_tuples)
    valuation = {
        var: draw(st.sampled_from(domain.values)) for var in variables
    }
    return domain, variables, valuation


@settings(max_examples=150, deadline=None)
@given(data=domain_vars_valuation())
def test_canonicalize_lands_in_canonical_set(data):
    domain, variables, valuation = data
    canon = canonicalize_valuation(variables, valuation, domain)
    assert canon in canonical_valuations(variables, domain)
    # idempotence
    assert canonicalize_valuation(variables, canon, domain) == canon


@settings(max_examples=100, deadline=None)
@given(data=domain_vars_valuation(),
       perm_index=st.integers(min_value=0, max_value=5))
def test_canonical_form_invariant_under_fresh_renaming(data, perm_index):
    domain, variables, valuation = data
    perms = list(itertools.permutations(domain.fresh))
    perm = dict(zip(domain.fresh, perms[perm_index % len(perms)]))
    renamed = {
        var: perm.get(value, value) for var, value in valuation.items()
    }
    assert canonicalize_valuation(variables, renamed, domain) == \
        canonicalize_valuation(variables, valuation, domain)


@given(domain=domains, variables=variable_tuples)
@settings(max_examples=40, deadline=None)
def test_canonical_valuations_are_exactly_the_fixpoints(domain, variables):
    canon_set = canonical_valuations(variables, domain)
    # every enumerated valuation is a fixpoint of canonicalization
    for valuation in canon_set:
        assert canonicalize_valuation(variables, valuation, domain) == \
            valuation
    # and the enumeration covers every orbit exactly once: canonicalizing
    # the full product enumeration reaches each representative, and no
    # two representatives are equivalent
    seen = []
    for combo in itertools.product(domain.values, repeat=len(variables)):
        valuation = dict(zip(variables, combo))
        canon = canonicalize_valuation(variables, valuation, domain)
        if canon not in seen:
            seen.append(canon)
    assert {tuple(sorted((v.name, val) for v, val in c.items()))
            for c in seen} == \
        {tuple(sorted((v.name, val) for v, val in c.items()))
         for c in canon_set}
