"""End-to-end tests of the LTL-FO verifier (Theorem 3.4's procedure)."""

import pytest

from repro.errors import InputBoundednessError, VerificationError
from repro.fo import Instance
from repro.spec import (
    ChannelSemantics, Composition, DECIDABLE_DEFAULT, PERFECT_BOUNDED,
    PeerBuilder,
)
from repro.verifier import (
    SearchBudget, TransitionCache, verify, verify_all,
    verify_over_databases,
)

DB = {"S": Instance({"items": [("a",)]})}


class TestBasicVerdicts:
    def test_safety_holds(self, sender_receiver):
        r = verify(sender_receiver,
                   "forall x: G( R.got(x) -> S.items(x) )", DB)
        assert r.satisfied
        assert r.counterexample is None
        assert "SATISFIED" in r.summary()

    def test_liveness_fails_under_lossy(self, sender_receiver):
        r = verify(sender_receiver,
                   "forall x: G( S.pick(x) -> F R.got(x) )", DB)
        assert not r.satisfied
        assert r.counterexample is not None
        assert r.counterexample.valuation == {"x": "a"}

    def test_result_is_truthy_iff_satisfied(self, sender_receiver):
        good = verify(sender_receiver, "G true", DB)
        assert bool(good)

    def test_false_property(self, sender_receiver):
        r = verify(sender_receiver, "F false", DB)
        assert not r.satisfied


class TestCounterexamples:
    def test_counterexample_is_a_real_run(self, sender_receiver):
        from repro.runtime import successors
        from repro.verifier import verification_domain
        dom = verification_domain(sender_receiver, [], DB)
        r = verify(sender_receiver,
                   "forall x: G( S.pick(x) -> F R.got(x) )", DB,
                   domain=dom)
        lasso = r.counterexample.lasso
        states = lasso.states()
        # every consecutive pair is a legal transition
        for i in range(len(states) - 1):
            nxt = successors(sender_receiver, states[i], dom.values,
                             DECIDABLE_DEFAULT)
            assert states[i + 1] in nxt
        # and the cycle closes
        closing = successors(sender_receiver, states[-1], dom.values,
                             DECIDABLE_DEFAULT)
        assert lasso.cycle[0] in closing

    def test_counterexample_describe(self, sender_receiver):
        r = verify(sender_receiver,
                   "forall x: G( S.pick(x) -> F R.got(x) )", DB)
        text = r.counterexample.describe(sender_receiver)
        assert "counterexample" in text
        assert "step 0" in text


class TestDomainRestriction:
    def test_occurs_restriction_excludes_phantom_valuations(
            self, sender_receiver):
        # 'F ~R.got(x)' is trivially violated ONLY with x in Dom(rho);
        # for fresh x never occurring, the occurs-constraint blocks the
        # counterexample, so only x="a" (which can occur) is reported
        r = verify(sender_receiver, "forall x: G R.got(x)", DB)
        assert not r.satisfied
        assert r.counterexample.valuation["x"] == "a"

    def test_valuation_candidates_prune(self, sender_receiver):
        r = verify(sender_receiver,
                   "forall x: G( R.got(x) -> S.items(x) )", DB,
                   valuation_candidates={"x": ("a",)})
        assert r.stats.valuations_checked == 1


class TestConfigurationGuards:
    def test_unbounded_queues_rejected(self, sender_receiver):
        with pytest.raises(VerificationError):
            verify(sender_receiver, "G true", DB,
                   semantics=ChannelSemantics(queue_bound=None))

    def test_input_boundedness_enforced(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).state("s", 1).action("out", 1)
            .insert_rule("s", ["x"], "d(x)")
            .action_rule("out", ["x"], "exists y: s(y) & d(x)")
            .build()
        )
        comp = Composition([peer])
        with pytest.raises(InputBoundednessError):
            verify(comp, "G true", {"P": Instance({"d": [("a",)]})})

    def test_check_can_be_disabled(self):
        peer = (
            PeerBuilder("P")
            .database("d", 1).state("s", 1).action("out", 1)
            .insert_rule("s", ["x"], "d(x)")
            .action_rule("out", ["x"], "exists y: s(y) & d(x)")
            .build()
        )
        comp = Composition([peer])
        r = verify(comp, "G true", {"P": Instance({"d": [("a",)]})},
                   check_input_bounded=False)
        assert r.satisfied

    def test_budget_enforced(self, sender_receiver):
        with pytest.raises(VerificationError):
            verify(sender_receiver, "G true", DB,
                   budget=SearchBudget(max_system_states=1,
                                       max_product_nodes=2))


class TestSemanticsComparison:
    def test_perfect_channels_strengthen_guarantees(self, sender_receiver):
        # under perfect channels, a sent message is enqueued: whenever S
        # just sent (S.msg reads the last message), R's queue is nonempty
        prop = "forall x: G( S.!msg(x) -> ~R.empty_msg )"
        perfect = verify(sender_receiver, prop, DB,
                         semantics=PERFECT_BOUNDED)
        assert perfect.satisfied
        lossy = verify(sender_receiver, prop, DB,
                       semantics=DECIDABLE_DEFAULT)
        # under lossy semantics the message may never have been enqueued
        # ... but S.!msg reads the queue itself, so it is empty too; use
        # the sent-flag-free observable: the property still holds.
        assert lossy.satisfied


class TestFairScheduling:
    def test_liveness_holds_under_perfect_fair(self, sender_receiver):
        prop = "forall x: G( S.pick(x) -> F R.got(x) )"
        r = verify(sender_receiver, prop, DB, semantics=PERFECT_BOUNDED,
                   fair_scheduling=True)
        assert r.satisfied

    def test_liveness_fails_under_lossy_even_fair(self, sender_receiver):
        prop = "forall x: G( S.pick(x) -> F R.got(x) )"
        r = verify(sender_receiver, prop, DB, fair_scheduling=True)
        assert not r.satisfied

    def test_fair_counterexample_moves_every_peer(self, sender_receiver):
        prop = "forall x: G( S.pick(x) -> F R.got(x) )"
        r = verify(sender_receiver, prop, DB, fair_scheduling=True)
        cycle_movers = {s.mover for s in r.counterexample.lasso.cycle}
        assert {"S", "R"} <= cycle_movers


class TestVerifyAll:
    def test_shared_cache(self, sender_receiver):
        results = verify_all(
            sender_receiver,
            ["forall x: G( R.got(x) -> S.items(x) )", "G true"],
            DB,
        )
        assert [bool(r) for r in results] == [True, True]


class TestVerifyOverDatabases:
    def test_holds_over_all_databases(self, sender_receiver):
        result = verify_over_databases(
            sender_receiver,
            "forall x: G( R.got(x) -> S.items(x) )",
            {"S": {"items": 1}}, ("a", "b"), max_rows=2,
        )
        assert result.satisfied

    def test_finds_witness_database(self, sender_receiver):
        # 'nothing is ever delivered' fails as soon as some database
        # offers an item to pick
        result = verify_over_databases(
            sender_receiver,
            "forall x: G( ~R.got(x) )",
            {"S": {"items": 1}}, ("a",), max_rows=1,
        )
        assert not result.satisfied

    def test_empty_database_only(self, sender_receiver):
        result = verify_over_databases(
            sender_receiver,
            "forall x: G( ~R.got(x) )",
            {"S": {"items": 1}}, ("a",), max_rows=0,
        )
        assert result.satisfied  # nothing to pick, nothing delivered


class TestMultiplePeersOrdering:
    def test_three_peer_chain(self):
        from repro.library.synthetic import (
            chain_databases, chain_safety_property, relay_chain,
        )
        comp = relay_chain(1)
        r = verify(comp, chain_safety_property(1), chain_databases(1))
        assert r.satisfied

    def test_chain_liveness_fails_lossy(self):
        from repro.library.synthetic import (
            chain_databases, chain_liveness_property, relay_chain,
        )
        comp = relay_chain(1)
        r = verify(comp, chain_liveness_property(1), chain_databases(1))
        assert not r.satisfied
