"""The static analyzer: diagnostics, passes, classifier, SARIF."""

import json

import pytest

from repro.analysis import (
    CODES, Severity, classify, classification_diagnostics,
    classify_protocol, lint_composition, lint_text, make, render_report,
    sort_key, to_json, to_sarif,
)
from repro.analysis.rules_pass import abstract, implies, satisfiable
from repro.ib import check_composition, summarize
from repro.library import ecommerce, loan, travel
from repro.library.synthetic import relay_chain
from repro.ltlfo.parser import parse_ltlfo
from repro.spec.channels import (
    ChannelSemantics, DECIDABLE_DEFAULT, DECIDABLE_FAITHFUL,
    DETERMINISTIC_LOSSY, PERFECT_BOUNDED,
)
from repro.spec.dsl import load_composition


def errors_of(report):
    return [d for d in report.diagnostics
            if d.severity is Severity.ERROR]


# ---------------------------------------------------------------------------
# diagnostics plumbing


class TestDiagnostics:
    def test_every_code_has_catalog_entry(self):
        for code, info in CODES.items():
            assert code.startswith("DWV") and len(code) == 6
            assert info.title and info.ref

    def test_make_defaults_from_catalog(self):
        d = make("DWV001", "msg", where="peer X", subject="phi")
        assert d.severity is Severity.ERROR
        assert d.ref == CODES["DWV001"].ref
        assert d.hint == CODES["DWV001"].hint

    def test_render_has_code_severity_location(self):
        d = make("DWV101", "never fires", where="peer X, insert rule "
                 "for s", subject="s(x) <- false")
        line = d.render().splitlines()[0]
        assert line.startswith("DWV101 warning [peer X, insert rule "
                               "for s]")
        assert "s(x) <- false" in line

    def test_sort_errors_first(self):
        note = make("DWV202", "unused", where="a")
        err = make("DWV001", "unguarded", where="z")
        assert sorted([note, err], key=sort_key)[0] is err

    def test_json_schema(self):
        payload = json.loads(to_json([make("DWV001", "m")]))
        assert payload["schema"] == "repro.lint/1"
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["code"] == "DWV001"

    def test_empty_report_is_clean(self):
        assert render_report([]) == "clean: no diagnostics"


# ---------------------------------------------------------------------------
# golden runs over the library specs (acceptance: zero errors)


class TestLibraryGolden:
    @pytest.mark.parametrize("composition", [
        loan.loan_composition(),
        ecommerce.ecommerce_composition(),
        travel.travel_composition(),
    ], ids=["loan", "ecommerce", "travel"])
    def test_no_error_diagnostics(self, composition):
        report = lint_composition(composition)
        assert errors_of(report) == []
        assert report.passes_run == [
            "ib", "rules", "reachability", "channels",
            "flow", "provenance", "cost", "decidability",
        ]

    def test_loan_flat_db_join_is_noted(self):
        report = lint_composition(loan.loan_composition())
        notes = report.by_code("DWV306")
        assert {d.peer for d in notes} == {"O", "CR"}

    def test_auction_example_lints_clean(self):
        text = open("examples/specs/auction.dws").read()
        report = lint_text(text)
        assert errors_of(report) == []


# ---------------------------------------------------------------------------
# seeded defects: each must produce exactly the expected code


NON_IB = """
peer A {
    state s/1
    state t/1
    in flat q/1
    insert s(x) <- ?q(x) & (exists y. (t(y)))
    insert t(x) <- ?q(x)
}
"""

UNREACHABLE = """
peer A {
    state s/1
    state never/1
    in flat q/1
    insert s(x) <- ?q(x) & never(x)
}
"""

UNDECLARED_QUEUE = """
peer A {
    state s/1
    in flat q/1
    insert s(x) <- ?q(x)
    send r(x) <- ?q(x)
}
"""

UNSAT_GUARD = """
peer A {
    state s/1
    state done/0
    in flat q/1
    insert s(x) <- ?q(x) & done & ~done
}
"""


class TestSeededDefects:
    def test_non_ib_rule(self):
        report = lint_text(NON_IB)
        assert [d.code for d in errors_of(report)] == ["DWV001"]

    def test_unreachable_state(self):
        report = lint_text(UNREACHABLE)
        assert report.by_code("DWV201")
        [diag] = report.by_code("DWV201")
        assert diag.subject == "never"
        assert errors_of(report) == []

    def test_undeclared_queue(self):
        report = lint_text(UNDECLARED_QUEUE)
        assert [d.code for d in errors_of(report)] == ["DWV301"]
        # structure-only: the document is not built
        assert report.passes_run == ["structure"]

    def test_unsatisfiable_guard(self):
        report = lint_text(UNSAT_GUARD)
        [diag] = report.by_code("DWV101")
        assert diag.peer == "A"

    def test_literal_false_body_is_not_dead(self):
        text = UNSAT_GUARD.replace("?q(x) & done & ~done", "false")
        report = lint_text(text)
        assert report.by_code("DWV101") == []


# ---------------------------------------------------------------------------
# structural scan


class TestStructuralScan:
    def test_wrong_kind_target(self):
        report = lint_text("""
peer A {
    database d/1
    in flat q/1
    state s/1
    insert s(x) <- ?q(x)
    send d(x) <- ?q(x)
}
""")
        assert [d.code for d in errors_of(report)] == ["DWV302"]

    def test_head_arity_mismatch(self):
        report = lint_text("""
peer A {
    state s/2
    in flat q/1
    insert s(x) <- ?q(x)
}
""")
        assert [d.code for d in errors_of(report)] == ["DWV303"]

    def test_duplicate_sender(self):
        report = lint_text("""
peer A {
    state s/1
    out flat q/1
    send q(x) <- s(x)
}
peer B {
    state t/1
    out flat q/1
    send q(x) <- t(x)
}
""")
        assert "DWV304" in [d.code for d in errors_of(report)]

    def test_endpoint_mismatch(self):
        report = lint_text("""
peer A {
    state s/1
    out flat q/1
    send q(x) <- s(x)
}
peer B {
    state t/2
    in flat q/2
    insert t(x, y) <- ?q(x, y)
}
""")
        assert [d.code for d in errors_of(report)] == ["DWV305"]

    def test_self_channel(self):
        report = lint_text("""
peer A {
    state s/1
    out flat q/1
    in flat q/1
    send q(x) <- s(x)
    insert s(x) <- ?q(x)
}
""")
        codes = [d.code for d in errors_of(report)]
        assert "DWV308" in codes or "DWV304" in codes


# ---------------------------------------------------------------------------
# dead/shadowed rule machinery


class TestPropositionalAbstraction:
    def test_contradiction_is_unsat(self):
        comp = load_composition(UNSAT_GUARD)
        rule = comp.peers[0].rules[0]
        assert not satisfiable(abstract(rule.body))

    def test_quantifiers_stay_opaque(self):
        # (exists x: t(x)) & ~(exists x: ~t(x)) is satisfiable; a naive
        # abstraction descending into the quantifiers would refute it.
        comp = load_composition("""
peer A {
    state t/1
    state s/0
    in flat q/1
    insert s <- (exists x. (t(x))) & ~(exists x. (~t(x)))
}
""")
        rule = comp.peers[0].rules[0]
        assert satisfiable(abstract(rule.body))

    def test_implies_same_skeleton(self):
        comp = load_composition(UNREACHABLE)
        body = comp.peers[0].rules[0].body
        assert implies(abstract(body), abstract(body))

    def test_insert_delete_shadow(self):
        report = lint_text("""
peer A {
    state s/1
    in flat q/1
    insert s(x) <- ?q(x)
    delete s(y) <- ?q(y)
}
""")
        # insert and delete always fire together: both are no-ops
        assert len(report.by_code("DWV102")) == 2

    def test_shadowed_disjunct(self):
        report = lint_text("""
peer A {
    state s/1
    state p/0
    in flat q/1
    insert s(x) <- ?q(x) | (?q(x) & p)
}
""")
        [diag] = report.by_code("DWV103")
        assert "disjunct 2" in diag.message


# ---------------------------------------------------------------------------
# reachability / unused


class TestReachability:
    def test_unused_relation(self):
        report = lint_text("""
peer A {
    database d/1
    state s/1
    in flat q/1
    insert s(x) <- ?q(x)
}
""")
        [diag] = report.by_code("DWV202")
        assert diag.subject == "d"

    def test_chain_states_are_reachable(self):
        report = lint_composition(relay_chain(2))
        assert report.by_code("DWV201") == []

    def test_closed_channel_feeds_reachability(self):
        # s is populated only via the channel from B; must not be flagged
        report = lint_text("""
peer A {
    state s/1
    in flat q/1
    state done/0
    insert s(x) <- ?q(x)
    insert done <- (exists x. (?q(x) & s(x)))
}
peer B {
    database d/1
    input pick/1
    out flat q/1
    input pick(x) <- d(x)
    send q(x) <- pick(x)
}
""")
        assert report.by_code("DWV201") == []


# ---------------------------------------------------------------------------
# channel discipline


class TestChannels:
    def test_never_consumed_queue(self):
        report = lint_text("""
peer A {
    state s/0
    in flat q/1
    insert s <- true
}
peer B {
    database d/1
    input pick/1
    out flat q/1
    input pick(x) <- d(x)
    send q(x) <- pick(x)
}
""")
        [diag] = report.by_code("DWV307")
        assert diag.subject == "q"

    def test_dangling_endpoint_is_note(self, open_relay):
        report = lint_composition(open_relay)
        codes = {d.code for d in report.diagnostics}
        assert "DWV309" in codes
        assert all(d.severity is not Severity.ERROR
                   for d in report.by_code("DWV309"))


# ---------------------------------------------------------------------------
# decidability classifier


class TestClassifier:
    def test_loan_is_pspace_decidable(self):
        sentences = [
            parse_ltlfo(loan.PROPERTY_BANK_POLICY_POINTWISE,
                        loan.loan_composition().schema),
        ]
        c = classify(loan.loan_composition(), sentences,
                     DECIDABLE_DEFAULT)
        assert c.decidable
        assert c.theorem == "Theorem 3.4"
        assert c.complexity == "PSPACE"

    def test_perfect_channels_undecidable(self):
        c = classify(loan.loan_composition(), (), PERFECT_BOUNDED)
        assert not c.decidable
        assert c.theorem == "Theorem 3.7"
        assert c.restriction_violated == "lossy channels"

    def test_unbounded_queues_undecidable(self):
        c = classify(loan.loan_composition(), (),
                     ChannelSemantics(lossy=True, queue_bound=None))
        assert not c.decidable
        assert c.theorem == "Corollary 3.6"

    def test_deterministic_sends_undecidable(self):
        c = classify(loan.loan_composition(), (), DETERMINISTIC_LOSSY)
        assert not c.decidable
        assert c.theorem == "Theorem 3.8"

    def test_non_ib_names_the_restriction(self):
        comp = load_composition(NON_IB)
        c = classify(comp)
        assert not c.decidable
        assert c.restriction_violated == "input-boundedness"

    def test_nested_emptiness_test_under_faithful_semantics(self):
        # loan's manager consults empty_recommend on a nested queue;
        # with empty nested sends enqueued that is Theorem 3.9 territory
        c = classify(loan.loan_composition(), (), DECIDABLE_FAITHFUL)
        assert not c.decidable
        assert c.theorem == "Theorem 3.9"

    def test_classification_diagnostics(self):
        decidable = classify(relay_chain(1))
        [d] = classification_diagnostics(decidable)
        assert d.code == "DWV401" and d.severity is Severity.NOTE
        [d] = classification_diagnostics(
            classify(relay_chain(1), (), PERFECT_BOUNDED))
        assert d.code == "DWV402" and d.severity is Severity.WARNING

    def test_protocol_rows(self):
        from repro.protocols.base import AgnosticProtocol, Observer
        recipient = AgnosticProtocol.from_ltl("G(a -> F b)")
        assert classify_protocol(recipient).decidable
        assert classify_protocol(recipient).theorem == "Theorem 4.2"
        source = AgnosticProtocol.from_ltl(
            "G(a -> F b)", observer=Observer.SOURCE)
        verdict = classify_protocol(source)
        assert not verdict.decidable
        assert verdict.theorem == "Theorem 4.3"


# ---------------------------------------------------------------------------
# check/lint rendering consistency (satellite: ib.report through Diagnostic)


class TestCheckLintConsistency:
    def test_summarize_matches_lint_rendering(self):
        comp = load_composition(NON_IB)
        check_lines = summarize(check_composition(comp),
                                comp).splitlines()
        report = lint_text(NON_IB)
        lint_lines = [
            line
            for d in report.by_code("DWV001")
            for line in d.render().splitlines()
        ]
        assert check_lines == lint_lines

    def test_clean_summary_keeps_wording(self):
        assert "no violations" in summarize([])


# ---------------------------------------------------------------------------
# SARIF


class TestSarif:
    def test_minimal_document_shape(self):
        report = lint_text(NON_IB)
        doc = json.loads(to_sarif(report.diagnostics,
                                  artifact_uri="spec.dws"))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "DWV001" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] in rule_ids
        assert result["level"] in ("error", "warning", "note")
        assert (result["locations"][0]["physicalLocation"]
                ["artifactLocation"]["uri"] == "spec.dws")

    def test_rule_index_consistent(self):
        report = lint_composition(loan.loan_composition())
        doc = json.loads(to_sarif(report.diagnostics))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
