"""Tests for Büchi complementation (deterministic and rank-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VerificationError
from repro.ltl import BuchiAutomaton, Edge, Guard, latom, lnot, ltl_to_buchi
from repro.ltl.complement import (
    complement, complement_deterministic, is_deterministic,
)
from repro.ltl.formulas import evaluate_on_word, lfinally, lglobally

P = frozenset({"p"})
E = frozenset()

WORDS = [
    ([], [P]), ([], [E]), ([P], [E]), ([E], [P]),
    ([], [P, E]), ([P, P], [E, P]), ([E, P, E], [P]),
]


def det_inf_p():
    return BuchiAutomaton(
        states={"n", "y"}, initial={"n"},
        edges=[
            Edge("n", Guard(pos=P), "y"), Edge("n", Guard(neg=P), "n"),
            Edge("y", Guard(pos=P), "y"), Edge("y", Guard(neg=P), "n"),
        ],
        accepting={"y"}, aps={"p"},
    )


def nondet_fg_p():
    """Nondeterministic: finitely many ~p (i.e. FG p)."""
    return BuchiAutomaton(
        states={0, 1}, initial={0},
        edges=[Edge(0, Guard(), 0), Edge(0, Guard(pos=P), 1),
               Edge(1, Guard(pos=P), 1)],
        accepting={1}, aps={"p"},
    )


class TestDetection:
    def test_deterministic_detected(self):
        assert is_deterministic(det_inf_p())

    def test_nondeterministic_detected(self):
        assert not is_deterministic(nondet_fg_p())


@pytest.mark.parametrize("make", [det_inf_p, nondet_fg_p])
class TestComplementCorrectness:
    def test_pointwise_complement(self, make):
        a = make()
        c = complement(a)
        for prefix, cycle in WORDS:
            assert a.accepts_lasso(prefix, cycle) != c.accepts_lasso(
                prefix, cycle
            )

    def test_intersection_empty(self, make):
        a = make()
        c = complement(a)
        assert a.intersection(c).is_empty()


class TestGuards:
    def test_too_many_states_rejected(self):
        states = set(range(10))
        a = BuchiAutomaton(
            states, {0},
            [Edge(i, Guard(), (i + 1) % 10) for i in range(10)]
            + [Edge(0, Guard(), 0)],  # nondeterministic at 0
            {0}, {"p"},
        )
        with pytest.raises(VerificationError):
            complement(a)

    def test_too_many_aps_rejected(self):
        aps = {f"a{i}" for i in range(11)}
        a = BuchiAutomaton({0}, {0}, [Edge(0, Guard(), 0)], {0}, aps)
        with pytest.raises(VerificationError):
            complement(a)


class TestAgainstLTL:
    def test_complement_of_gf_equals_fg_not(self):
        a = det_inf_p()                       # GF p
        c = complement(a)
        fg_not_p = ltl_to_buchi(lfinally(lglobally(lnot(latom("p")))))
        for prefix, cycle in WORDS:
            assert c.accepts_lasso(prefix, cycle) == fg_not_p.accepts_lasso(
                prefix, cycle
            )


_letters = st.sampled_from([E, P])


@given(prefix=st.lists(_letters, max_size=4),
       cycle=st.lists(_letters, min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_complement_partitions_all_words(prefix, cycle):
    a = nondet_fg_p()
    c = complement(a)
    assert a.accepts_lasso(prefix, cycle) != c.accepts_lasso(prefix, cycle)
