"""Tests for the observability CLI surface: `repro top`, `repro
doctor`, `repro trace convert`, `repro metrics export`, `repro bench
check` -- plus the end-to-end acceptance path: a sharded, parallel
verify whose traces stitch into one Chrome document under one run id.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import ledger, live

SPEC = """
peer S {
    database items/1
    input pick/1
    out flat msg/1
    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}
peer R {
    state got/1
    in flat msg/1
    insert got(x) <- ?msg(x)
}
database S {
    items: ("a",)
}
property safety:
    forall x: G( R.got(x) -> S.items(x) )
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "relay.dws"
    path.write_text(SPEC)
    return str(path)


@pytest.fixture(autouse=True)
def _clean(tmp_path, monkeypatch):
    monkeypatch.setenv(live.RUN_DIR_ENV, str(tmp_path / "runs"))
    monkeypatch.delenv(ledger.RUN_ID_ENV, raising=False)
    ledger.end_run()
    yield
    ledger.end_run()


def _bench_entry(wall, recorded_at):
    return {
        "schema": "repro.metrics/1",
        "recorded_at": recorded_at,
        "experiment": "e1",
        "case": "c1",
        "verdict": "SATISFIED",
        "stats": {"wall_seconds": wall, "system_states": 40},
    }


class TestTopCommand:
    def test_once_without_runs_exits_1(self, capsys):
        assert main(["top", "--once"]) == 1
        assert "no runs under" in capsys.readouterr().out

    def test_once_renders_heartbeat(self, capsys):
        ledger.begin_run(run_id="r-top-01")
        live.sweep_progress(10).finish()
        ledger.end_run()
        assert main(["top", "--once"]) == 0
        out = capsys.readouterr().out
        assert "r-top-01" in out
        assert "[sweep]" in out

    def test_run_filter(self, capsys):
        for run_id in ("r-top-a", "r-top-b"):
            ledger.begin_run(run_id=run_id)
            live.sweep_progress(5).finish()
            ledger.end_run()
        assert main(["top", "--once", "--run", "r-top-a"]) == 0
        out = capsys.readouterr().out
        assert "r-top-a" in out and "r-top-b" not in out


class TestDoctorCommand:
    def test_healthy_host(self, capsys):
        code = main(["doctor"])
        out = capsys.readouterr().out
        assert "shared memory available:" in out
        assert "runs directory:" in out
        # this test process creates no segments, so a leak here would
        # be someone else's; tolerate both but require the audit line
        assert "leaked graph segments" in out
        assert code in (0, 1)

    def test_leak_detection_and_clean(self, capsys):
        from repro.verifier import shm
        if not shm.shm_available():
            pytest.skip("POSIX shared memory unavailable")
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(
            create=True, size=64, name=f"{shm.SEGMENT_PREFIX}clitest")
        seg.close()
        try:
            assert main(["doctor"]) == 1
            assert "clitest" in capsys.readouterr().out
            assert main(["doctor", "--clean"]) == 0
            assert "cleaned" in capsys.readouterr().out
            assert main(["doctor"]) == 0
        finally:
            try:
                shared_memory.SharedMemory(
                    name=f"{shm.SEGMENT_PREFIX}clitest").unlink()
            except FileNotFoundError:
                pass


class TestTraceConvertCommand:
    def test_missing_input_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "convert",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_default_output_swaps_suffix(self, spec_file, tmp_path,
                                         capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["verify", spec_file, "--trace", str(trace),
                     "--run-id", "r-cli-01"]) == 0
        assert main(["trace", "convert", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "r-cli-01" in out
        doc = json.loads((tmp_path / "t.chrome.json").read_text())
        assert doc["otherData"]["run_ids"] == ["r-cli-01"]
        assert doc["traceEvents"]

    def test_warns_on_mixed_runs_and_corruption(self, spec_file,
                                                tmp_path, capsys):
        t1, t2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["verify", spec_file, "--trace", str(t1),
              "--run-id", "r-mix-1"])
        main(["verify", spec_file, "--trace", str(t2),
              "--run-id", "r-mix-2"])
        with open(t1, "a") as fh:
            fh.write('{"torn...\n')
        out_file = tmp_path / "mixed.chrome.json"
        assert main(["trace", "convert", str(t1), str(t2),
                     "--output", str(out_file)]) == 0
        err = capsys.readouterr().err
        assert "2 different runs" in err
        assert "corrupt" in err


class TestMetricsExportCommand:
    def test_exports_metrics_json_document(self, spec_file, tmp_path,
                                           capsys):
        metrics = tmp_path / "m.json"
        main(["verify", spec_file, "--metrics-json", str(metrics),
              "--run-id", "r-pm-01"])
        assert main(["metrics", "export", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert 'repro_run_info{run="r-pm-01"} 1' in out
        assert any(line.endswith("_total " + line.split()[-1])
                   for line in out.splitlines()
                   if not line.startswith("#"))
        assert "repro_phase_seconds_total" in out

    def test_output_file(self, spec_file, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        main(["verify", spec_file, "--metrics-json", str(metrics)])
        out_file = tmp_path / "m.prom"
        assert main(["metrics", "export", str(metrics),
                     "--output", str(out_file)]) == 0
        assert "repro_" in out_file.read_text()

    def test_rejects_non_metrics_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1"}')
        assert main(["metrics", "export", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBenchCheckCommand:
    def test_passes_on_stable_history(self, tmp_path, capsys):
        (tmp_path / "BENCH_e1.json").write_text(json.dumps([
            _bench_entry(1.0, "2026-01-01T00:00:00+0000"),
            _bench_entry(1.05, "2026-01-02T00:00:00+0000"),
        ]))
        assert main(["bench", "check",
                     "--metrics-dir", str(tmp_path)]) == 0
        assert "bench check: OK" in capsys.readouterr().out

    def test_fails_on_planted_2x(self, tmp_path, capsys):
        (tmp_path / "BENCH_e1.json").write_text(json.dumps([
            _bench_entry(1.0, "2026-01-01T00:00:00+0000"),
            _bench_entry(1.0, "2026-01-02T00:00:00+0000"),
            _bench_entry(2.0, "2026-01-09T00:00:00+0000"),
        ]))
        assert main(["bench", "check",
                     "--metrics-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        (tmp_path / "BENCH_e1.json").write_text(json.dumps([
            _bench_entry(1.0, "2026-01-01T00:00:00+0000"),
            _bench_entry(1.0, "2026-01-02T00:00:00+0000"),
        ]))
        assert main(["bench", "check", "--metrics-dir", str(tmp_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.bench-check/1"
        assert doc["ok"] is True

    def test_empty_dir_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "check",
                     "--metrics-dir", str(tmp_path)]) == 2

    def test_committed_trajectory_passes(self, capsys):
        metrics_dir = (Path(__file__).parent.parent
                       / "benchmarks" / "metrics")
        if not metrics_dir.is_dir():
            pytest.skip("no committed trajectory")
        assert main(["bench", "check",
                     "--metrics-dir", str(metrics_dir)]) == 0


@pytest.mark.obs
class TestShardedRunStitches:
    """The PR's acceptance path: shards + workers -> one Chrome trace."""

    def test_two_shards_four_workers_one_run(self, spec_file, tmp_path,
                                             capsys, monkeypatch):
        # each shard runs as its own process (as it would on its own
        # machine), correlated only by the exported REPRO_RUN_ID
        env = dict(os.environ)
        env[ledger.RUN_ID_ENV] = "r-accept-01"
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src")
        traces, fragments = [], []
        for i in range(2):
            trace = tmp_path / f"shard{i}.jsonl"
            frag = tmp_path / f"shard{i}.json"
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "verify", spec_file,
                 "--workers", "4", "--shard", f"{i}/2",
                 "--shard-output", str(frag), "--trace", str(trace)],
                env=env, capture_output=True, text=True, timeout=300)
            assert proc.returncode == 0, proc.stderr
            traces.append(trace)
            fragments.append(frag)
            doc = json.loads(frag.read_text())
            assert doc["run_id"] == "r-accept-01"

        merged_file = tmp_path / "merged.json"
        assert main(["merge-shards", str(fragments[0]),
                     str(fragments[1]), "--output",
                     str(merged_file)]) == 0
        merged = json.loads(merged_file.read_text())
        assert merged["run_ids"] == ["r-accept-01"]
        assert merged["metrics"]["schema"] in (
            "repro.metrics/1", "repro.metrics/2")

        out_file = tmp_path / "run.chrome.json"
        assert main(["trace", "convert", str(traces[0]), str(traces[1]),
                     "--output", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())  # validates as JSON
        assert doc["otherData"]["run_ids"] == ["r-accept-01"]

        events = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
        assert all(ev["args"]["run"] == "r-accept-01" for ev in events
                   if "args" in ev and "run" in ev.get("args", {}))
        meta = [ev for ev in doc["traceEvents"]
                if ev["name"] == "process_name"]
        labels = [ev["args"]["name"] for ev in meta]
        # the driver/worker/shard hierarchy is visible in the track
        # names: both shards' drivers plus their pool workers
        assert sum(1 for lab in labels if "driver" in lab) == 2
        assert any("shard 0/2" in lab for lab in labels)
        assert any("shard 1/2" in lab for lab in labels)
        worker_pids = {ev["pid"] for ev in events
                       if ev.get("args", {}).get("worker") is not None}
        driver_pids = {ev["pid"] for ev in meta} - worker_pids
        if len({ev["pid"] for ev in events}) > 2:
            # fork workers joined the trace as their own processes
            assert worker_pids
        # spans from every pid balance in the converted document
        per_pid = {}
        for ev in events:
            if ev["ph"] in ("B", "E"):
                per_pid.setdefault(ev["pid"], []).append(ev["ph"])
        for pid, phs in per_pid.items():
            assert phs.count("B") == phs.count("E"), pid
        assert driver_pids
