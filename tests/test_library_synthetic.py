"""Tests for the synthetic benchmark families."""

import pytest

from repro.ib import is_input_bounded_composition
from repro.library.synthetic import (
    chain_databases, chain_liveness_property, chain_safety_property,
    relay_chain, relay_ring, wide_databases, wide_peer,
    wide_safety_property,
)
from repro.verifier import verification_domain, verify


class TestGenerators:
    def test_chain_structure(self):
        comp = relay_chain(2)
        assert [p.name for p in comp.peers] == ["P0", "P1", "P2", "P3"]
        assert comp.is_closed

    def test_chain_zero_relays(self):
        comp = relay_chain(0)
        assert len(comp.peers) == 2

    def test_chain_negative_rejected(self):
        with pytest.raises(ValueError):
            relay_chain(-1)

    def test_ring_structure(self):
        comp = relay_ring(2)
        assert comp.is_closed
        # the last queue feeds back to P0
        assert comp.channel("q2").receiver == "P0"

    def test_wide_peer(self):
        comp = wide_peer(3)
        assert comp.channel("ship").arity == 3

    def test_all_input_bounded(self):
        for comp in (relay_chain(2), relay_ring(2), wide_peer(3)):
            assert is_input_bounded_composition(comp)


class TestVerification:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_chain_safety_scales(self, n):
        comp = relay_chain(n)
        r = verify(comp, chain_safety_property(n), chain_databases(n))
        assert r.satisfied

    def test_chain_liveness_fails(self):
        comp = relay_chain(1)
        r = verify(comp, chain_liveness_property(1), chain_databases(1))
        assert not r.satisfied

    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_wide_safety_scales_arity(self, arity):
        comp = wide_peer(arity)
        dom = verification_domain(comp, [], wide_databases(arity),
                                  fresh_count=1)
        r = verify(comp, wide_safety_property(arity),
                   wide_databases(arity), domain=dom)
        assert r.satisfied

    def test_ring_round_trip(self):
        comp = relay_ring(1)
        r = verify(comp, "forall x: G( P0.returned(x) -> P0.items(x) )",
                   chain_databases(1))
        assert r.satisfied
