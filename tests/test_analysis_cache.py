"""Tests for the content-addressed lint cache (analysis.cache).

The contract under test: cached reports are *byte-for-byte* identical
to cold ones (text, JSON, and SARIF), document hits skip all pass work,
and editing one peer invalidates only that peer's entry.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    LintCache, lint_cached, lint_cached_composition, lint_composition,
    lint_text, render_report, to_json, to_sarif,
)

TWO_PEER_SPEC = """
peer S {
    database items/1
    input pick/1
    out flat msg/1
    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}
peer R {
    state got/1
    in flat msg/1
    insert got(x) <- ?msg(x)
}
database S {
    items: ("a",)
}
property safety:
    forall x: G( R.got(x) -> S.items(x) )
"""


def render_all(report):
    return (render_report(report.diagnostics)
            + to_json(report.diagnostics)
            + to_sarif(report.diagnostics)
            + repr(report.passes_run)
            + repr({n: c.describe()
                    for n, c in sorted(report.classifications.items())})
            + repr(sorted(report.cost_hints.items())))


class TestAccounting:
    def test_cold_then_warm(self, tmp_path):
        cache = LintCache(tmp_path)
        lint_cached(TWO_PEER_SPEC, cache=cache)
        assert (cache.document_hits, cache.document_misses) == (0, 1)
        assert cache.peer_misses == 2
        assert cache.stores == 3   # 2 peers + 1 document
        lint_cached(TWO_PEER_SPEC, cache=cache)
        assert cache.document_hits == 1
        assert cache.peer_hits == 2
        assert cache.stores == 3   # nothing new written

    def test_stats_line_mentions_counts_and_root(self, tmp_path):
        cache = LintCache(tmp_path)
        lint_cached(TWO_PEER_SPEC, cache=cache)
        line = cache.stats_line()
        assert "doc-misses=1" in line
        assert str(tmp_path) in line

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = LintCache(tmp_path)
        lint_cached(TWO_PEER_SPEC, cache=cache)
        for path in tmp_path.rglob("*.json"):
            path.write_text("{ not json")
        fresh = LintCache(tmp_path)
        report = lint_cached(TWO_PEER_SPEC, cache=fresh)
        assert fresh.document_hits == 0
        assert report.passes_run[-1] == "decidability"


class TestByteIdentity:
    def test_warm_report_is_byte_identical(self, tmp_path):
        cache = LintCache(tmp_path)
        cold = lint_text(TWO_PEER_SPEC)
        first = lint_cached(TWO_PEER_SPEC, cache=cache)
        warm = lint_cached(TWO_PEER_SPEC, cache=cache)
        assert render_all(first) == render_all(cold)
        assert render_all(warm) == render_all(cold)

    def test_library_composition_round_trips(self, tmp_path):
        from repro.library import payments

        cache = LintCache(tmp_path)
        composition = payments.payments_composition()
        cold = lint_composition(composition)
        lint_cached_composition(composition, cache=cache)
        warm = lint_cached_composition(composition, cache=cache)
        assert cache.document_hits == 1
        assert render_all(warm) == render_all(cold)

    @given(st.integers(min_value=0, max_value=2 ** 20))
    @settings(max_examples=12, deadline=None)
    def test_fuzz_generated_specs_round_trip(self, tmp_path_factory, seed):
        from repro.fuzz.generate import generate
        from repro.ltlfo.parser import parse_ltlfo

        spec = generate(seed, "3.4")
        sentences = {
            name: parse_ltlfo(text, spec.composition.schema)
            for name, text in spec.properties.items()
        }
        cold = lint_composition(spec.composition, sentences,
                                spec.semantics)
        cache = LintCache(tmp_path_factory.mktemp("lint-cache"))
        first = lint_cached_composition(
            spec.composition, spec.properties, spec.semantics,
            cache=cache)
        warm = lint_cached_composition(
            spec.composition, spec.properties, spec.semantics,
            cache=cache)
        assert render_all(first) == render_all(cold)
        assert render_all(warm) == render_all(cold)


class TestInvalidation:
    def test_editing_one_peer_keeps_the_other_peers_entry(self, tmp_path):
        cache = LintCache(tmp_path)
        lint_cached(TWO_PEER_SPEC, cache=cache)
        edited = TWO_PEER_SPEC.replace(
            "    insert got(x) <- ?msg(x)\n",
            "    insert got(x) <- ?msg(x)\n"
            "    delete got(x) <- got(x)\n",
        )
        cache = LintCache(tmp_path)
        lint_cached(edited, cache=cache)
        assert cache.document_misses == 1
        assert cache.peer_hits == 1    # S unchanged, served
        assert cache.peer_misses == 1  # R edited, recomputed

    def test_semantics_partition_the_cache(self, tmp_path):
        from repro.spec import PERFECT_BOUNDED

        cache = LintCache(tmp_path)
        lint_cached(TWO_PEER_SPEC, cache=cache)
        lint_cached(TWO_PEER_SPEC, semantics=PERFECT_BOUNDED, cache=cache)
        assert cache.document_hits == 0
        assert cache.document_misses == 2

    def test_upstream_invention_invalidates_downstream_peer(self, tmp_path):
        spec = """
peer A {
    database items/1
    input go/1
    out flat m/1
    input go(x) <- items(x)
    send m(x) <- go(x)
}
peer B {
    state got/1
    in flat m/1
    insert got(x) <- ?m(x)
}
"""
        cache = LintCache(tmp_path)
        lint_cached(spec, cache=cache)
        # A now invents the payload; B's text is unchanged but its
        # inbound provenance signature is not, so B must recompute.
        inventing = spec.replace(
            "    send m(x) <- go(x)\n",
            "    send m(y) <- exists x. (go(x))\n")
        cache = LintCache(tmp_path)
        lint_cached(inventing, cache=cache)
        assert cache.peer_hits == 0
        assert cache.peer_misses == 2
