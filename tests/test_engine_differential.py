"""Differential testing of the shared-exploration engine vs the seed.

The shared engine (``repro.verifier.graph``) must be observationally
identical to the seed per-valuation engine: interning preserves
successor order, initial-state order, and Büchi target order, so for
every case the two engines agree on

* the verdict,
* the decisive counterexample valuation and its lasso (which must also
  replay as a legal run through the operational semantics,
  :func:`repro.runtime.validate_lasso`), and
* the search node counts (``product_nodes_visited``) -- node for node,
  not just in aggregate.

``system_states`` is deliberately NOT compared: freezing expands the
full reachable graph, while the seed's lazy product may prune (the NBA
can block before the composition frontier is exhausted).

Alongside the library/synthetic grid, a hypothesis suite fuzzes the
sender/receiver database contents and property choice, and unit tests
pin the graph machinery itself (interner stability, CSR consistency,
pickled-graph serving, budget fallback).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.fo import Instance
from repro.library import ecommerce, loan, synthetic, travel
from repro.runtime import validate_lasso
from repro.spec import Composition, DECIDABLE_DEFAULT, PeerBuilder
from repro.verifier import (
    ExploredGraph, SharedExploration, TransitionCache,
    verification_domain, verify,
)


def sender_receiver_case(rows=(("a",), ("b",))):
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": list(rows)})}
    return comp, dbs


def _cases():
    """(label, composition, databases, property, candidates, expected)."""
    sr_comp, sr_dbs = sender_receiver_case()
    loan_comp = loan.loan_composition()
    loan_buggy = loan.loan_composition(buggy_officer=True)
    eco_comp = ecommerce.ecommerce_composition()
    travel_comp = travel.travel_composition()
    chain = synthetic.relay_chain(1)
    eco_cands = {"p": ("widget",), "card": ("visa", "amex")}
    travel_cands = {"f": ("fl1",), "d": ("rome",), "r": ("rm1",)}
    return [
        ("sr-safety", sr_comp, sr_dbs,
         "forall x: G( R.got(x) -> S.items(x) )", None, True),
        ("sr-liveness", sr_comp, sr_dbs,
         "forall x: G( S.pick(x) -> F R.got(x) )", None, False),
        ("loan-letter", loan_comp, loan.standard_database("fair"),
         loan.PROPERTY_LETTER_NEEDS_APPLICATION,
         loan.STANDARD_CANDIDATES, True),
        ("loan-buggy", loan_buggy, loan.standard_database("poor"),
         loan.PROPERTY_BANK_POLICY_POINTWISE,
         loan.STANDARD_CANDIDATES, False),
        ("ecommerce-auth", eco_comp, ecommerce.standard_database("good"),
         ecommerce.PROPERTY_SHIP_REQUIRES_AUTH, eco_cands, True),
        ("ecommerce-resolved", eco_comp,
         ecommerce.standard_database("good"),
         ecommerce.PROPERTY_ORDER_RESOLVED, eco_cands, False),
        ("travel-itinerary", travel_comp, travel.standard_database(),
         travel.PROPERTY_ITINERARY_CONFIRMED, travel_cands, True),
        ("travel-booking", travel_comp, travel.standard_database(),
         travel.PROPERTY_BOOKING_CONFIRMED, travel_cands, False),
        ("chain-safety", chain, synthetic.chain_databases(1),
         synthetic.chain_safety_property(1), None, True),
        ("chain-liveness", chain, synthetic.chain_databases(1),
         synthetic.chain_liveness_property(1), None, False),
    ]


CASES = _cases()


def run_differential(comp, dbs, prop, candidates, expected):
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    seed = verify(comp, prop, dbs, domain=dom,
                  valuation_candidates=candidates, workers=1,
                  engine="seed")
    shared = verify(comp, prop, dbs, domain=dom,
                    valuation_candidates=candidates, workers=1,
                    engine="shared")
    assert seed.satisfied == expected, seed.summary()
    assert shared.satisfied == seed.satisfied, (
        f"verdict diverged: seed={seed.verdict} shared={shared.verdict}"
    )
    assert shared.stats.valuations_checked == seed.stats.valuations_checked
    assert shared.stats.product_nodes_visited == \
        seed.stats.product_nodes_visited, (
            "nodes_visited diverged: "
            f"seed={seed.stats.product_nodes_visited} "
            f"shared={shared.stats.product_nodes_visited}"
        )
    if expected:
        assert seed.counterexample is None
        assert shared.counterexample is None
        return
    assert seed.counterexample is not None
    assert shared.counterexample is not None
    assert shared.counterexample.valuation == seed.counterexample.valuation
    assert shared.counterexample.lasso.prefix == \
        seed.counterexample.lasso.prefix
    assert shared.counterexample.lasso.cycle == \
        seed.counterexample.lasso.cycle
    problems = validate_lasso(comp, dbs, dom.values,
                              shared.counterexample.lasso,
                              semantics=DECIDABLE_DEFAULT)
    assert not problems, problems


@pytest.mark.parametrize(
    "label,comp,dbs,prop,candidates,expected",
    CASES, ids=[c[0] for c in CASES],
)
def test_engines_agree(label, comp, dbs, prop, candidates, expected):
    run_differential(comp, dbs, prop, candidates, expected)


SR_PROPERTIES = [
    "forall x: G( R.got(x) -> S.items(x) )",
    "forall x: G( S.pick(x) -> F R.got(x) )",
    "G( ~R.empty_msg -> F R.empty_msg )",
    "G R.empty_msg",
]


class TestHypothesisDifferential:
    """Random databases and properties: the engines must never diverge."""

    @settings(max_examples=12, deadline=None)
    @given(
        rows=st.sets(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3
        ),
        prop_idx=st.integers(min_value=0, max_value=len(SR_PROPERTIES) - 1),
    )
    def test_random_database_and_property(self, rows, prop_idx):
        comp, _ = sender_receiver_case()
        dbs = {"S": Instance({"items": [(v,) for v in sorted(rows)]})}
        prop = SR_PROPERTIES[prop_idx]
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        seed = verify(comp, prop, dbs, domain=dom, engine="seed")
        shared = verify(comp, prop, dbs, domain=dom, engine="shared")
        assert shared.satisfied == seed.satisfied
        assert shared.stats.product_nodes_visited == \
            seed.stats.product_nodes_visited
        if seed.counterexample is not None:
            assert shared.counterexample.valuation == \
                seed.counterexample.valuation
            assert shared.counterexample.lasso.cycle == \
                seed.counterexample.lasso.cycle

    @settings(max_examples=6, deadline=None)
    @given(relays=st.integers(min_value=0, max_value=2))
    def test_random_synthetic_chain(self, relays):
        comp = synthetic.relay_chain(relays)
        dbs = synthetic.chain_databases(relays)
        for prop in (synthetic.chain_safety_property(relays),
                     synthetic.chain_liveness_property(relays)):
            dom = verification_domain(comp, [], dbs, fresh_count=1)
            seed = verify(comp, prop, dbs, domain=dom, engine="seed")
            shared = verify(comp, prop, dbs, domain=dom, engine="shared")
            assert shared.satisfied == seed.satisfied
            assert shared.stats.product_nodes_visited == \
                seed.stats.product_nodes_visited


class TestGraphMachinery:
    """Unit tests for the interner / frozen-graph substrate."""

    def _exploration(self, rows=(("a",), ("b",))):
        comp, dbs = sender_receiver_case(rows)
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        cache = TransitionCache(comp, dbs, dom.values, DECIDABLE_DEFAULT)
        return comp, SharedExploration(cache)

    def test_interning_is_stable(self):
        _, engine = self._exploration()
        roots = engine.initial_ids()
        for sid in roots:
            state = engine.interner.state_of(sid)
            assert engine.interner.intern(state) == sid

    def test_frozen_successors_match_lazy(self):
        comp, engine = self._exploration()
        # force some lazy exploration first
        lazy = {
            sid: engine.successors_of(sid) for sid in engine.initial_ids()
        }
        graph = engine.complete()
        assert isinstance(graph, ExploredGraph)
        # every row served from the CSR must equal the lazy row
        fresh = SharedExploration.from_graph(graph, comp)
        for sid in range(graph.num_states):
            assert fresh.successors_of(sid) == engine.successors_of(sid)
        for sid, row in lazy.items():
            assert fresh.successors_of(sid) == row

    def test_complete_is_idempotent(self):
        _, engine = self._exploration()
        graph = engine.complete()
        assert engine.complete() is graph

    def test_graph_pickle_roundtrip(self):
        comp, engine = self._exploration()
        graph = engine.complete()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.num_states == graph.num_states
        assert clone.num_edges == graph.num_edges
        assert clone.initial_ids == graph.initial_ids
        assert clone.offsets == graph.offsets
        assert clone.targets == graph.targets
        assert clone.states == graph.states
        served = SharedExploration.from_graph(clone, comp)
        for sid in range(graph.num_states):
            assert served.successors_of(sid) == engine.successors_of(sid)

    def test_from_graph_reports_zero_expansions(self):
        comp, engine = self._exploration()
        graph = engine.complete()
        worker = SharedExploration.from_graph(graph, comp)
        for sid in worker.initial_ids():
            worker.successors_of(sid)
        assert worker.states_expanded == 0
        assert engine.states_expanded == graph.num_states

    def test_complete_budget_fallback(self):
        from repro.errors import VerificationError
        from repro.verifier import SearchBudget
        comp, dbs = sender_receiver_case()
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        cache = TransitionCache(comp, dbs, dom.values, DECIDABLE_DEFAULT,
                                budget=SearchBudget(max_system_states=3))
        engine = SharedExploration(cache)
        assert engine.complete(strict=False) is None
        with pytest.raises(VerificationError):
            engine.complete(strict=True)
