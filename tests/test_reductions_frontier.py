"""Tests for the frontier gadgets (Theorems 3.8, 3.9, 3.10)."""

import pytest

from repro.errors import InputBoundednessError
from repro.ib import check_composition, check_peer, check_sentence
from repro.ltlfo import parse_ltlfo
from repro.reductions import (
    deterministic_send_gadget, emptiness_test_gadget,
    nonground_nested_gadget, nonground_nested_peer,
)
from repro.spec import (
    ChannelSemantics, DECIDABLE_DEFAULT, DETERMINISTIC_LOSSY,
    FlatSendDiscipline, NestedEmptySend, PERFECT_BOUNDED,
)
from repro.verifier import verify


class TestDeterministicSend:
    """Theorem 3.8: the error-flag semantics is observable."""

    def test_nondeterministic_discipline_never_errors(self):
        comp, dbs, prop = deterministic_send_gadget()
        r = verify(comp, prop, dbs, semantics=PERFECT_BOUNDED)
        assert r.satisfied

    def test_deterministic_discipline_raises_flag(self):
        comp, dbs, prop = deterministic_send_gadget()
        r = verify(comp, prop, dbs, semantics=DETERMINISTIC_LOSSY)
        assert not r.satisfied

    def test_flag_consultable_by_property(self):
        comp, dbs, _prop = deterministic_send_gadget()
        # once the error flag raises, no message was enqueued that move
        r = verify(comp, "G( S.error_ship -> R.empty_ship )",
                   dbs, semantics=ChannelSemantics(
                       lossy=False, queue_bound=1,
                       flat_send=FlatSendDiscipline.DETERMINISTIC_ERROR,
                   ))
        assert r.satisfied


class TestEmptinessTests:
    """Theorem 3.9: emptiness tests on nested messages leave the fragment."""

    def test_property_rejected_by_checker(self):
        comp, _dbs, _ib_prop, emptiness_prop = emptiness_test_gadget()
        sentence = parse_ltlfo(emptiness_prop, comp.schema)
        assert check_sentence(sentence, comp.schema)

    def test_verify_raises_without_override(self):
        comp, dbs, _ib_prop, emptiness_prop = emptiness_test_gadget()
        with pytest.raises(InputBoundednessError):
            verify(comp, emptiness_prop, dbs)

    def test_in_fragment_property_accepted(self):
        comp, dbs, ib_prop, _ = emptiness_test_gadget()
        r = verify(comp, ib_prop, dbs)
        assert r.satisfied

    def test_empty_messages_distinguishable_with_override(self):
        comp, dbs, _ib, emptiness_prop = emptiness_test_gadget()
        faithful = ChannelSemantics(
            lossy=True, queue_bound=1,
            nested_empty_send=NestedEmptySend.ENQUEUE,
        )
        # empty findings + faithful semantics: empty reports are heard,
        # violating "every heard report is non-empty"
        r = verify(comp, emptiness_prop, dbs, semantics=faithful,
                   check_input_bounded=False)
        assert not r.satisfied
        # under the skip semantics no message ever arrives: satisfied
        r2 = verify(comp, emptiness_prop, dbs,
                    semantics=DECIDABLE_DEFAULT,
                    check_input_bounded=False)
        assert r2.satisfied


class TestNonGroundNested:
    """Theorem 3.10: non-ground nested atoms in input rules."""

    def test_peer_rejected_by_checker(self):
        violations = check_peer(nonground_nested_peer())
        assert any("ground" in v.reason for v in violations)

    def test_composition_flagged(self):
        assert check_composition(nonground_nested_gadget())
