"""Tests for the DWV5xx communication-flow pass (analysis.flow).

Golden seeded-defect specs for every code in the family, plus the
negative control: all shipped library domains are flow-clean.
"""

import pytest

from repro.analysis import lint_composition, lint_text
from repro.spec import build_comm_graph

#: Live producer, consumers present, but every consuming rule is dead.
ORPHAN_SPEC = """
peer A {
    database items/1
    input go/1
    out flat m/1
    input go(x) <- items(x)
    send m(x) <- go(x)
}
peer B {
    state got/1
    state blocked/1
    in flat m/1
    insert got(x) <- ?m(x) & blocked(x)
}
"""

#: A multi-hop relay chain whose tail is never observed: every message
#: beyond the queue bound is silently dropped.
DROPPED_CHAIN_SPEC = """
peer A {
    database items/1
    input go/1
    out flat m1/1
    input go(x) <- items(x)
    send m1(x) <- go(x)
}
peer B {
    in flat m1/1
    out flat m2/1
    send m2(x) <- ?m1(x)
}
peer C {
    state s/0
    input ping/0
    in flat m2/1
    input ping <- true
    insert s <- ping
}
"""


def codes(report):
    return {d.code for d in report.diagnostics}


class TestDeadlockDetector:
    def test_seeded_payments_deadlock_flags_dwv501(self):
        from repro.library.payments import deadlocked_payments_composition

        report = lint_composition(deadlocked_payments_composition())
        found = codes(report)
        assert "DWV501" in found
        [diag] = [d for d in report.diagnostics if d.code == "DWV501"]
        assert diag.subject == "cycle ack -> charge"
        # the deadlock must not cascade into orphan/dropped findings
        assert "DWV502" not in found
        assert "DWV503" not in found

    def test_healthy_payments_is_flow_clean(self):
        from repro.library.payments import payments_composition

        report = lint_composition(payments_composition())
        assert not {c for c in codes(report) if c.startswith("DWV5")}


class TestOrphanFlows:
    def test_dead_consumer_flags_dwv502(self):
        report = lint_text(ORPHAN_SPEC)
        assert "DWV502" in codes(report)
        [diag] = [d for d in report.diagnostics if d.code == "DWV502"]
        assert diag.where == "channel m"
        assert "insert rule for got" in diag.subject

    def test_no_consumer_at_all_is_dwv307_not_dwv502(self):
        report = lint_text(DROPPED_CHAIN_SPEC)
        found = codes(report)
        assert "DWV307" in found      # m2 declared, never read
        assert "DWV502" not in found  # that case belongs to DWV307


class TestDroppedChains:
    def test_unobserved_relay_chain_flags_dwv503(self):
        report = lint_text(DROPPED_CHAIN_SPEC)
        [diag] = [d for d in report.diagnostics if d.code == "DWV503"]
        assert diag.where == "channel m1"
        assert diag.subject == "chain m1 -> m2"
        assert any("relayed by" in line for line in diag.provenance)

    def test_observed_relay_chain_is_clean(self):
        observed = DROPPED_CHAIN_SPEC.replace(
            "    state s/0\n",
            "    state s/0\n    state seen/1\n",
        ).replace(
            "    insert s <- ping\n",
            "    insert s <- ping\n    insert seen(x) <- ?m2(x)\n",
        )
        report = lint_text(observed)
        assert "DWV503" not in codes(report)


@pytest.mark.parametrize("library,factory", [
    ("loan", "loan_composition"),
    ("credit", "credit_check_composition"),
    ("ecommerce", "ecommerce_composition"),
    ("travel", "travel_composition"),
    ("payments", "payments_composition"),
    ("dispatch", "dispatch_composition"),
])
def test_shipped_domains_have_no_flow_or_provenance_findings(
        library, factory):
    module = "loan" if library == "credit" else library
    import importlib
    mod = importlib.import_module(f"repro.library.{module}")
    report = lint_composition(getattr(mod, factory)())
    noisy = {c for c in codes(report)
             if c.startswith("DWV5") or c.startswith("DWV6")}
    assert not noisy, f"{library}: unexpected findings {sorted(noisy)}"


def test_comm_graph_wires_channels_to_rules():
    from repro.library.payments import payments_composition

    graph = build_comm_graph(payments_composition())
    producers = {n.peer for n in graph.producers("charge")}
    consumers = {n.peer for n in graph.consumers("charge")}
    assert producers == {"Shop"}
    assert "PSP" in consumers
