"""Unit tests for relation symbols and schemas."""

import pytest

from repro.errors import SchemaError
from repro.fo import RelationKind, RelationSymbol, Schema
from repro.fo.schema import (
    empty_name, error_name, move_name, prev_name, received_name,
)


def sym(name, arity=1, kind=RelationKind.DATABASE, **kw):
    return RelationSymbol(name, arity, kind, **kw)


class TestRelationSymbol:
    def test_qualified_name(self):
        s = sym("customer", 3, owner="O")
        assert s.qualified_name == "O.customer"

    def test_unqualified_name(self):
        assert sym("customer").qualified_name == "customer"

    def test_qualify(self):
        s = sym("apply", 2, RelationKind.IN_QUEUE).qualify("O")
        assert s.owner == "O"
        assert s.qualified_name == "O.apply"

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            sym("r", -1)

    def test_nested_only_for_queues(self):
        with pytest.raises(SchemaError):
            RelationSymbol("r", 1, RelationKind.STATE, nested=True)

    def test_flat_and_nested_queue_predicates(self):
        flat = RelationSymbol("q", 1, RelationKind.IN_QUEUE)
        nested = RelationSymbol("q", 1, RelationKind.OUT_QUEUE, nested=True)
        assert flat.is_flat_queue and not flat.is_nested_queue
        assert nested.is_nested_queue and not nested.is_flat_queue
        assert not sym("d").is_queue


class TestSchema:
    def test_lookup(self):
        s = Schema([sym("a"), sym("b", 2)])
        assert s["a"].arity == 1
        assert s["b"].arity == 2

    def test_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema([])["missing"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([sym("a"), sym("a", 2)])

    def test_same_name_different_owner_ok(self):
        s = Schema([sym("a", owner="P"), sym("a", owner="Q")])
        assert len(s) == 2

    def test_of_kind(self):
        s = Schema([
            sym("d"), sym("s", 1, RelationKind.STATE),
            sym("i", 1, RelationKind.INPUT),
        ])
        names = [x.name for x in s.of_kind(RelationKind.STATE,
                                           RelationKind.INPUT)]
        assert names == ["i", "s"]

    def test_merge_conflict(self):
        with pytest.raises(SchemaError):
            Schema([sym("a")]).merge(Schema([sym("a")]))

    def test_restrict(self):
        s = Schema([sym("a"), sym("b")]).restrict(["a"])
        assert s.names() == ("a",)

    def test_restrict_unknown(self):
        with pytest.raises(SchemaError):
            Schema([sym("a")]).restrict(["zzz"])


class TestDerivedNames:
    def test_prev(self):
        assert prev_name("reccom") == "prev_reccom"
        assert prev_name("O.reccom") == "O.prev_reccom"

    def test_empty(self):
        assert empty_name("history") == "empty_history"
        assert empty_name("O.history") == "O.empty_history"

    def test_error(self):
        assert error_name("ship") == "error_ship"

    def test_received(self):
        assert received_name("rating") == "received_rating"
        assert received_name("O.rating") == "O.received_rating"

    def test_move(self):
        assert move_name("O") == "move_O"
