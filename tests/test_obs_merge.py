"""Histogram-bucket merge semantics across the two merge paths.

``repro.obs.metrics.merge_registry_snapshot`` (fold a shard snapshot
into the live registry) and ``repro.verifier.shards.
merge_metrics_snapshots`` (pure N-way fold) implement the same
algebra -- counters/phases add, gauges max, histogram buckets add
position-wise when boundaries agree.  These tests pin that algebra,
including a hypothesis property: splitting one observation stream
across shards and merging must reproduce the unsharded histogram
exactly, bucket by bucket.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import REGISTRY
from repro.obs.metrics import COMPAT_SCHEMAS, merge_registry_snapshot
from repro.obs.metrics import Histogram, SCHEMA
from repro.verifier.shards import merge_metrics_snapshots

BOUNDS = (0.001, 0.01, 0.1, 1.0)


@pytest.fixture(autouse=True)
def _clean_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def _snap(schema=SCHEMA, counters=None, gauges=None, histograms=None,
          phases=None):
    return {
        "schema": schema,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
        "phases": phases or {},
    }


def _hist_snap(values, bounds=BOUNDS):
    h = Histogram("h", bounds)
    for v in values:
        h.observe(v)
    return h.snapshot()


class TestMergeRegistrySnapshot:
    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            merge_registry_snapshot(_snap(schema="repro.metrics/99"))

    def test_accepts_both_compat_schemas(self):
        for schema in sorted(COMPAT_SCHEMAS):
            merge_registry_snapshot(_snap(schema=schema,
                                          counters={"c": 1}))
        assert REGISTRY.snapshot()["counters"]["c"] == 2

    def test_histogram_buckets_add_positionwise(self):
        merge_registry_snapshot(_snap(histograms={
            "h": _hist_snap([0.0005, 0.05, 0.05])}))
        merge_registry_snapshot(_snap(histograms={
            "h": _hist_snap([0.05, 5.0])}))
        merged = REGISTRY.snapshot()["histograms"]["h"]
        # buckets: <=0.001, <=0.01, <=0.1, <=1.0, overflow
        assert merged["counts"] == [1, 0, 3, 0, 1]
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(0.0005 + 3 * 0.05 + 5.0)

    def test_mismatched_boundaries_skipped(self):
        merge_registry_snapshot(_snap(histograms={
            "h": _hist_snap([0.05])}))
        merge_registry_snapshot(_snap(histograms={
            "h": _hist_snap([0.05], bounds=(0.5, 1.0))}))
        merged = REGISTRY.snapshot()["histograms"]["h"]
        assert merged["boundaries"] == list(BOUNDS)
        assert merged["count"] == 1  # the incompatible snapshot dropped

    def test_gauges_take_max_counters_and_phases_add(self):
        merge_registry_snapshot(_snap(
            counters={"c": 2}, gauges={"g": 5},
            phases={"search": {"seconds": 1.0, "count": 2}}))
        merge_registry_snapshot(_snap(
            counters={"c": 3}, gauges={"g": 4},
            phases={"search": {"seconds": 0.5, "count": 1}}))
        snap = REGISTRY.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 5
        assert snap["phases"]["search"] == {"seconds": 1.5, "count": 3}


class TestMergeMetricsSnapshots:
    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            merge_metrics_snapshots([_snap(schema="other/1")])

    def test_merged_doc_carries_current_schema(self):
        merged = merge_metrics_snapshots([
            _snap(schema="repro.metrics/1", counters={"c": 1}),
            _snap(schema="repro.metrics/2", counters={"c": 1}),
        ])
        assert merged["schema"] == SCHEMA
        assert merged["counters"] == {"c": 2}

    def test_histograms_add_and_keys_sort(self):
        merged = merge_metrics_snapshots([
            _snap(histograms={"z": _hist_snap([0.05]),
                              "a": _hist_snap([0.5])}),
            _snap(histograms={"z": _hist_snap([0.05, 0.05])}),
        ])
        assert list(merged["histograms"]) == ["a", "z"]
        assert merged["histograms"]["z"]["counts"] == [0, 0, 3, 0, 0]
        assert merged["histograms"]["z"]["count"] == 3

    def test_mismatched_boundaries_keep_first(self):
        merged = merge_metrics_snapshots([
            _snap(histograms={"h": _hist_snap([0.05])}),
            _snap(histograms={"h": _hist_snap([9.0], bounds=(1.0, 2.0))}),
        ])
        assert merged["histograms"]["h"]["boundaries"] == list(BOUNDS)
        assert merged["histograms"]["h"]["count"] == 1


values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    max_size=30,
)


class TestShardingRoundTrip:
    @given(values=values_strategy, n_shards=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_sharded_merge_equals_unsharded(self, values, n_shards):
        """Observations split across shards merge back losslessly."""
        whole = _hist_snap(values)
        shards = [
            _snap(histograms={"h": _hist_snap(values[i::n_shards])},
                  counters={"c": len(values[i::n_shards])})
            for i in range(n_shards)
        ]
        merged = merge_metrics_snapshots(shards)
        assert merged["histograms"]["h"]["counts"] == whole["counts"]
        assert merged["histograms"]["h"]["count"] == whole["count"]
        assert (merged["histograms"]["h"]["sum"]
                == pytest.approx(whole["sum"]))
        assert merged["counters"]["c"] == len(values)

    @given(values=values_strategy, n_shards=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_registry_fold_agrees_with_pure_fold(self, values, n_shards):
        """The in-registry and pure merges implement one algebra."""
        shards = [
            _snap(histograms={"h": _hist_snap(values[i::n_shards])})
            for i in range(n_shards)
        ]
        REGISTRY.reset()
        for snap in shards:
            merge_registry_snapshot(snap)
        via_registry = REGISTRY.snapshot()["histograms"].get("h")
        via_pure = merge_metrics_snapshots(shards)["histograms"].get("h")
        if via_pure is None:
            assert via_registry is None or via_registry["count"] == 0
        else:
            assert via_registry["counts"] == via_pure["counts"]
            assert via_registry["count"] == via_pure["count"]
            assert via_registry["sum"] == pytest.approx(via_pure["sum"])
