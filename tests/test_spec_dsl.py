"""Tests for the textual specification language (.dws files)."""

import pytest

from repro.errors import ParseError, SpecificationError
from repro.spec import load, load_composition, load_databases
from repro.verifier import verify

DOCUMENT = """
# the quickstart composition, as a text spec
peer S {
    database items/1
    input pick/1
    out flat msg/1

    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}

peer R {
    state got/1
    in flat msg/1

    insert got(x) <- ?msg(x)
}

database S {
    items: ("a",), ("b",)
}
"""


class TestLoadComposition:
    def test_peers_and_channels(self):
        comp = load_composition(DOCUMENT)
        assert [p.name for p in comp.peers] == ["S", "R"]
        assert comp.channel("msg").sender == "S"
        assert comp.is_closed

    def test_rules_parsed(self):
        comp = load_composition(DOCUMENT)
        officer = comp.peer("S")
        assert len(officer.rules) == 2

    def test_comments_stripped(self):
        comp = load_composition("# hi\npeer P {\n database d/1 # inline\n}")
        assert comp.peers[0].database[0].name == "d"

    def test_multiline_rule_body(self):
        text = """
        peer P {
            database d/2
            state s/2
            insert s(x, y) <- d(x, y)
                              & x = y
        }
        """
        comp = load_composition(text)
        rule = comp.peer("P").rules[0]
        assert "x = y" in str(rule.body)

    def test_propositional_declarations(self):
        text = """
        peer P {
            state flag/0
            input go/0
            input go <- true
            insert flag <- go
        }
        """
        comp = load_composition(text)
        assert comp.peer("P").states[0].arity == 0

    def test_nested_queue_declaration(self):
        text = """
        peer P {
            database d/1
            input go/0
            out nested bulk/1
            input go <- true
            send bulk(x) <- go & d(x)
        }
        peer Q {
            state s/1
            in nested bulk/1
            insert s(x) <- ?bulk(x)
        }
        """
        comp = load_composition(text)
        assert comp.channel("bulk").nested

    def test_missing_brace_rejected(self):
        with pytest.raises(ParseError):
            load_composition("peer P {\n database d/1\n")

    def test_garbage_statement_rejected(self):
        with pytest.raises(ParseError):
            load_composition("peer P {\n databaze d/1\n}")

    def test_no_peers_rejected(self):
        with pytest.raises(SpecificationError):
            load_composition("# nothing here")


class TestLoadDatabases:
    def test_rows(self):
        dbs = load_databases(DOCUMENT)
        assert dbs["S"]["items"] == frozenset({("a",), ("b",)})

    def test_integer_values(self):
        dbs = load_databases(
            'database P {\n r: ("x", 1), ("y", -2)\n}'
        )
        assert (("x", 1) in dbs["P"]["r"])
        assert (("y", -2) in dbs["P"]["r"])

    def test_bad_value_rejected(self):
        with pytest.raises(ParseError):
            load_databases("database P {\n r: (unquoted,)\n}")


class TestAuctionSpecFile:
    """The shipped examples/specs/auction.dws stays loadable and correct."""

    @pytest.fixture(scope="class")
    def auction(self):
        from pathlib import Path
        path = (Path(__file__).parent.parent / "examples" / "specs"
                / "auction.dws")
        return load(path.read_text())

    def test_loads_closed_input_bounded(self, auction):
        composition, _dbs = auction
        from repro.ib import is_input_bounded_composition
        assert composition.is_closed
        assert is_input_bounded_composition(composition)

    def test_auction_completes(self, auction):
        composition, databases = auction
        from repro.runtime import reachable_states
        from repro.verifier import verification_domain
        domain = verification_domain(composition, [], databases,
                                     fresh_count=1)
        outcomes = set()
        for state in reachable_states(composition, databases,
                                      domain.values):
            outcomes |= state.data["Seller.outcome"]
        assert ("vase", "high", "sold") in outcomes

    def test_reserve_policy_holds(self, auction):
        composition, databases = auction
        result = verify(
            composition,
            'forall x, b: G( House.!verdict(x, b, "sold") '
            "-> House.reserve(x, b) )",
            databases,
        )
        assert result.satisfied


class TestEndToEnd:
    def test_loaded_composition_verifies(self):
        composition, databases = load(DOCUMENT)
        result = verify(
            composition,
            "forall x: G( R.got(x) -> S.items(x) )",
            databases,
        )
        assert result.satisfied

    def test_loaded_composition_finds_bug(self):
        # a spec where the receiver invents values: property fails
        text = DOCUMENT.replace(
            "insert got(x) <- ?msg(x)",
            "insert got(x) <- ?msg(x) | x = \"ghost\"",
        )
        composition, databases = load(text)
        result = verify(
            composition,
            "forall x: G( R.got(x) -> S.items(x) )",
            databases,
        )
        assert not result.satisfied
        assert result.counterexample.valuation["x"] == "ghost"
