"""Tests for the FO surface-syntax parser."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.fo import (
    And, Atom, Const, Eq, Exists, Forall, Implies, Not, Or, RelationKind,
    RelationSymbol, Schema, Var, free_vars, parse_fo, tokenize,
)


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('r(x, "lit") & y = 3')]
        assert kinds == ["ident", "op", "ident", "op", "string", "op",
                         "op", "ident", "op", "number", "eof"]

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize("r(x) # comment")

    def test_qualified_ident_with_sigil(self):
        toks = tokenize("O.?apply(x)")
        assert toks[0].text == "O.?apply"

    def test_negative_number(self):
        toks = tokenize("x = -5")
        assert toks[2].text == "-5"


class TestParsing:
    def test_atom(self):
        f = parse_fo("customer(id, ssn, name)")
        assert f == Atom("customer", (Var("id"), Var("ssn"), Var("name")))

    def test_propositional_atom(self):
        assert parse_fo("applied") == Atom("applied", ())

    def test_string_constant(self):
        f = parse_fo('status(x, "open")')
        assert f.terms[1] == Const("open")

    def test_integer_constant(self):
        f = parse_fo("level(7)")
        assert f.terms[0] == Const(7)

    def test_equality_and_inequality(self):
        assert parse_fo("x = y") == Eq(Var("x"), Var("y"))
        assert parse_fo("x != y") == Not(Eq(Var("x"), Var("y")))

    def test_constant_on_left_of_equality(self):
        f = parse_fo('"a" = x')
        assert f == Eq(Const("a"), Var("x"))

    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_fo("a & b | c")
        assert isinstance(f, Or)

    def test_precedence_implies_loosest(self):
        f = parse_fo("a & b -> c")
        assert isinstance(f, Implies)
        assert isinstance(f.antecedent, And)

    def test_implies_right_associative(self):
        f = parse_fo("a -> b -> c")
        assert isinstance(f.consequent, Implies)

    def test_negation(self):
        f = parse_fo("~a & not b")
        assert isinstance(f, And)
        assert all(isinstance(c, Not) for c in f.children)

    def test_iff_expands(self):
        f = parse_fo("a <-> b")
        assert isinstance(f, And)

    def test_quantifier_scope_maximal(self):
        f = parse_fo("exists x: r(x) & s(x)")
        assert isinstance(f, Exists)
        assert free_vars(f) == frozenset()

    def test_quantifier_in_parens(self):
        f = parse_fo("(exists x: r(x)) & s(y)")
        assert isinstance(f, And)

    def test_forall_with_implication(self):
        f = parse_fo("forall x: r(x) -> s(x)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, Implies)

    def test_multi_variable_quantifier(self):
        f = parse_fo("exists x, y: r(x, y)")
        assert isinstance(f, Exists)
        assert len(f.variables) == 2

    def test_dot_accepted_as_quantifier_separator(self):
        f = parse_fo("exists x . r(x)")
        assert isinstance(f, Exists)

    def test_true_false(self):
        from repro.fo import TRUE, FALSE
        assert parse_fo("true") == TRUE
        assert parse_fo("false") == FALSE

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_fo("r(x) r(y)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_fo("(r(x)")


class TestSchemaValidation:
    def setup_method(self):
        self.schema = Schema([
            RelationSymbol("customer", 3, RelationKind.DATABASE),
            RelationSymbol("apply", 2, RelationKind.IN_QUEUE),
            RelationSymbol("getRating", 1, RelationKind.OUT_QUEUE),
        ])

    def test_known_relation_ok(self):
        parse_fo("customer(a, b, c)", self.schema)

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            parse_fo("nosuch(x)", self.schema)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            parse_fo("customer(a, b)", self.schema)

    def test_in_queue_sigil(self):
        f = parse_fo("?apply(x, y)", self.schema)
        assert f.rel == "apply"

    def test_out_queue_sigil(self):
        f = parse_fo("!getRating(x)", self.schema)
        assert f.rel == "getRating"

    def test_wrong_sigil_rejected(self):
        with pytest.raises(SchemaError):
            parse_fo("!apply(x, y)", self.schema)
        with pytest.raises(SchemaError):
            parse_fo("?customer(a, b, c)", self.schema)

    def test_qualified_sigil(self):
        schema = Schema([
            RelationSymbol("apply", 2, RelationKind.IN_QUEUE, owner="O"),
        ])
        f = parse_fo("O.?apply(x, y)", schema)
        assert f.rel == "O.apply"


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "exists x: r(x) & (s(x) | t(x))",
        'forall a, b: p(a, b) -> a = b',
        "~(a & b) | c",
        'q(x, "v") & x != "v"',
    ])
    def test_str_reparses_to_same_tree(self, text):
        first = parse_fo(text)
        second = parse_fo(str(first).replace(". (", ": ("))
        assert first == second
