"""Tests for the e-commerce composition."""

import pytest

from repro.ib import is_input_bounded_composition
from repro.library.ecommerce import (
    PROPERTY_AUTH_HONEST, PROPERTY_NO_SHIP_ON_DECLINE,
    PROPERTY_ORDER_RESOLVED, PROPERTY_SHIP_REQUIRES_AUTH,
    ecommerce_composition, standard_database,
)
from repro.runtime import reachable_states
from repro.verifier import verification_domain, verify

CANDS = {"p": ("widget",), "card": ("visa", "amex")}


@pytest.fixture(scope="module")
def setup():
    comp = ecommerce_composition()
    dbs = standard_database("good")
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    return comp, dbs, dom


class TestStructure:
    def test_closed(self):
        assert ecommerce_composition().is_closed

    def test_input_bounded(self):
        assert is_input_bounded_composition(ecommerce_composition())


class TestBehaviour:
    def test_shipping_reachable_with_good_card(self, setup):
        comp, dbs, dom = setup
        states = reachable_states(comp, dbs, dom.values, limit=300_000)
        shipped = set()
        for s in states:
            shipped |= s.data["Store.ship"]
        assert ("widget", "visa") in shipped

    def test_bad_card_never_ships(self):
        comp = ecommerce_composition()
        dbs = standard_database("bad")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        states = reachable_states(comp, dbs, dom.values, limit=300_000)
        for s in states:
            assert not s.data["Store.ship"]


class TestProperties:
    def test_ship_requires_order(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_SHIP_REQUIRES_AUTH, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert r.satisfied, r.summary()

    def test_no_ship_on_decline(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_NO_SHIP_ON_DECLINE, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert r.satisfied, r.summary()

    def test_auth_honest(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_AUTH_HONEST, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert r.satisfied, r.summary()

    def test_order_resolution_fails_lossy(self, setup):
        comp, dbs, dom = setup
        r = verify(comp, PROPERTY_ORDER_RESOLVED, dbs, domain=dom,
                   valuation_candidates=CANDS)
        assert not r.satisfied
