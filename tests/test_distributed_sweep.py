"""The distributed sweep: stealing, sharding, crashes, start methods.

PR 6's determinism contract, tested differentially: the verdict, the
decisive valuation (and its global ``decisive_order``), and the
counterexample lasso must be bit-for-bit identical across

* worker counts (1 / 2 / 4) under the work-stealing pool,
* ``--shard`` runs -- a trivial 1-shard run and a 3-shard split merged
  back through :func:`repro.verifier.merge_fragments`,
* the ``fork`` and ``spawn`` start methods, and
* a pool crash: a worker killed mid-task must trip the
  ``BrokenProcessPool`` fallback, which re-runs the sweep sequentially
  in the driver with the same verdict and no leaked ``/dev/shm``
  segment.

Plus white-box units for the scheduler pieces: ``plan_batches`` (steal
units never span a ``(group, ctx)`` exploration), ``shard_filter``
(disjoint complete partition with global orders), and ``resolve_shard``
validation.  A hypothesis property closes the loop over random
sender-receiver style compositions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fo import Instance
from repro.obs import counters_snapshot
from repro.runtime import validate_lasso
from repro.spec import Composition, PeerBuilder
from repro.verifier import (
    leaked_segments, merge_fragments, resolve_shard, result_from_merged,
    shard_filter, shard_fragment, verification_domain, verify,
)
from repro.verifier.parallel import SweepTask, plan_batches

SAFETY = "forall x: G( R.got(x) -> S.items(x) )"
LIVENESS = "forall x: G( S.pick(x) -> F R.got(x) )"


def sender_receiver_case(items=("a", "b")):
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": [(i,) for i in items]})}
    return comp, dbs


def _verify(comp, dbs, prop, **kwargs):
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    return verify(comp, prop, dbs, domain=dom, **kwargs)


def _merged_shard_run(comp, dbs, prop, count, workers=1):
    """Run *count* shards separately and merge their fragments."""
    fragments = []
    for index in range(count):
        result = _verify(comp, dbs, prop, workers=workers,
                         shard=(index, count))
        fragments.append(
            shard_fragment([result], (index, count), composition=comp)
        )
    merged = merge_fragments(fragments)
    assert merged["shards"] == count
    return result_from_merged(merged["properties"][0])


def _assert_equivalent(reference, other, comp, dbs, dom_values):
    assert other.verdict == reference.verdict
    assert other.stats.decisive_order == reference.stats.decisive_order
    assert (other.stats.product_nodes_visited
            == reference.stats.product_nodes_visited)
    assert (other.stats.valuations_checked
            == reference.stats.valuations_checked)
    if reference.counterexample is None:
        assert other.counterexample is None
        return
    assert other.counterexample is not None
    assert (other.counterexample.valuation
            == reference.counterexample.valuation)
    assert other.counterexample.lasso == reference.counterexample.lasso
    problems = validate_lasso(comp, dbs, dom_values,
                              other.counterexample.lasso)
    assert not problems, problems


# ---------------------------------------------------------------------------
# scheduler units


def _grid(n_tasks, groups=1, ctxs=1):
    tasks = []
    order = 0
    for group in range(groups):
        for ctx in range(ctxs):
            for _ in range(n_tasks):
                tasks.append(SweepTask(group=group, order=order, ctx=ctx,
                                       sentence=group, valuation=()))
                order += 1
    return tasks


def test_plan_batches_cover_grid_in_order():
    tasks = _grid(11, groups=2, ctxs=2)
    batches = plan_batches(tasks, workers=4)
    flat = [t for batch in batches for t in batch]
    assert flat == tasks  # nothing lost, global order preserved
    for batch in batches:
        assert len({(t.group, t.ctx) for t in batch}) == 1, (
            "a steal unit spans two explorations"
        )


def test_plan_batches_chunk_size_targets_steal_granularity():
    tasks = _grid(64)
    batches = plan_batches(tasks, workers=4)
    # 64 tasks / (4 workers * 4 batches each) -> chunks of 4
    assert max(len(b) for b in batches) == 4
    assert plan_batches([], workers=4) == []
    # tiny grids degrade to one-task batches, never to zero batches
    assert [len(b) for b in plan_batches(_grid(2), workers=8)] == [1, 1]


def test_shard_filter_is_a_partition():
    tasks = _grid(10, groups=2)
    count = 3
    shards = [shard_filter(tasks, (i, count)) for i in range(count)]
    seen = [t for shard in shards for t in shard]
    assert sorted(seen, key=lambda t: t.order) == tasks
    assert sum(len(s) for s in shards) == len(tasks)
    for i, shard in enumerate(shards):
        assert all(t.order % count == i for t in shard)
    assert shard_filter(tasks, None) == tasks
    assert shard_filter(tasks, (0, 1)) == tasks


def test_resolve_shard_validates():
    assert resolve_shard(None) is None
    assert resolve_shard((2, 3)) == (2, 3)
    for bad in ((3, 3), (-1, 2), (0, 0)):
        with pytest.raises(ValueError):
            resolve_shard(bad)


# ---------------------------------------------------------------------------
# differential: workers x shards


@pytest.mark.parametrize("prop,expected", [(SAFETY, True),
                                           (LIVENESS, False)])
def test_workers_and_shards_agree(prop, expected):
    comp, dbs = sender_receiver_case()
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    reference = _verify(comp, dbs, prop, workers=1)
    assert reference.satisfied == expected, reference.summary()

    for workers in (2, 4):
        par = _verify(comp, dbs, prop, workers=workers)
        _assert_equivalent(reference, par, comp, dbs, dom.values)

    trivial = _verify(comp, dbs, prop, workers=2, shard=(0, 1))
    _assert_equivalent(reference, trivial, comp, dbs, dom.values)

    merged = _merged_shard_run(comp, dbs, prop, count=3, workers=2)
    _assert_equivalent(reference, merged, comp, dbs, dom.values)
    assert not leaked_segments(), leaked_segments()


def test_shard_conflicts_are_rejected():
    comp, dbs = sender_receiver_case()
    from repro.verifier import TransitionCache
    from repro.spec.channels import DECIDABLE_DEFAULT
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    cache = TransitionCache(comp, dbs, dom.values, DECIDABLE_DEFAULT)
    with pytest.raises(ValueError, match="shard"):
        verify(comp, SAFETY, dbs, domain=dom, shard=(0, 2),
               transition_cache=cache)


# ---------------------------------------------------------------------------
# crash robustness


def test_pool_crash_falls_back_sequentially(monkeypatch):
    """Killing a worker mid-task must not change the verdict or leak."""
    comp, dbs = sender_receiver_case()
    reference = _verify(comp, dbs, LIVENESS, workers=1)

    monkeypatch.setenv("REPRO_TEST_KILL_TASK", "0")
    before = counters_snapshot()
    crashed = _verify(comp, dbs, LIVENESS, workers=2)
    after = counters_snapshot()

    broke = (after.get("sweep.pool_broken", 0)
             - before.get("sweep.pool_broken", 0))
    assert broke >= 1, "the killed worker did not trip the pool fallback"
    assert crashed.verdict == reference.verdict
    assert (crashed.counterexample.valuation
            == reference.counterexample.valuation)
    assert crashed.counterexample.lasso == reference.counterexample.lasso
    assert not leaked_segments(), leaked_segments()


# ---------------------------------------------------------------------------
# start methods


def test_spawn_start_method_smoke(monkeypatch):
    """The pool works (and stays deterministic) under spawn workers."""
    comp, dbs = sender_receiver_case()
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    reference = _verify(comp, dbs, LIVENESS, workers=1)
    monkeypatch.setenv("REPRO_START_METHOD", "spawn")
    par = _verify(comp, dbs, LIVENESS, workers=2)
    _assert_equivalent(reference, par, comp, dbs, dom.values)
    assert not leaked_segments(), leaked_segments()


# ---------------------------------------------------------------------------
# hypothesis: random compositions, random shard splits


@settings(max_examples=5, deadline=None)
@given(
    items=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                   max_size=3, unique=True),
    prop=st.sampled_from([SAFETY, LIVENESS]),
    count=st.integers(min_value=1, max_value=3),
)
def test_shard_merge_matches_sequential(items, prop, count):
    comp, dbs = sender_receiver_case(tuple(items))
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    reference = _verify(comp, dbs, prop, workers=1)
    merged = _merged_shard_run(comp, dbs, prop, count=count, workers=1)
    _assert_equivalent(reference, merged, comp, dbs, dom.values)
    assert not leaked_segments(), leaked_segments()
