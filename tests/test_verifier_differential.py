"""Differential testing of the verifier against sampled lasso runs.

If the verifier declares a property SATISFIED, then every lasso run we
can sample by random walk (walk until a snapshot repeats; the segment
between the repetitions is a legal cycle) must satisfy the instantiated
property for every canonical valuation.  Conversely, the verifier's own
counterexamples must violate the property on the word level.

This closes the loop between three independently implemented components:
the operational semantics (run sampling), the LTL word semantics
(evaluate_on_word), and the Büchi product search.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fo import Instance
from repro.ltlfo import parse_ltlfo
from repro.runtime import initial_states, successors
from repro.spec import DECIDABLE_DEFAULT, PERFECT_BOUNDED
from repro.verifier import (
    SnapshotEvaluator, canonical_valuations, verification_domain, verify,
)
from repro.ltl import evaluate_on_word, lnot

DB = {"S": Instance({"items": [("a",)]})}

PROPERTIES = [
    ("forall x: G( R.got(x) -> S.items(x) )", True),
    ("forall x: G( S.pick(x) -> F R.got(x) )", False),
    ("G( ~R.empty_msg -> F R.empty_msg )", False),   # queue may stay full
    ("forall x: (~R.got(x)) U S.pick(x) | G ~R.got(x)", True),
    ("G R.empty_msg", False),                        # a delivery refutes it
]


def sample_lasso(composition, databases, domain, seed, semantics,
                 max_steps=40):
    """Random-walk until a snapshot repeats; return (prefix, cycle)."""
    rng = random.Random(seed)
    state = rng.choice(initial_states(composition, databases, domain))
    path = [state]
    index = {state: 0}
    for _ in range(max_steps):
        state = rng.choice(
            successors(composition, state, domain, semantics)
        )
        if state in index:
            i = index[state]
            return tuple(path[:i]), tuple(path[i:])
        index[state] = len(path)
        path.append(state)
    return None


def lasso_word(composition, domain, lasso, aps):
    evaluator = SnapshotEvaluator(composition, domain, frozenset(aps))
    prefix = [evaluator.letter(s) for s in lasso[0]]
    cycle = [evaluator.letter(s) for s in lasso[1]]
    return prefix, cycle


def payloads_of(body):
    from repro.ltl import LAtom, lwalk
    return {n.ap for n in lwalk(body) if isinstance(n, LAtom)}


@pytest.mark.parametrize("prop_text,expected", PROPERTIES)
def test_verifier_agrees_with_sampled_runs(sender_receiver, prop_text,
                                           expected):
    sentence = parse_ltlfo(prop_text, sender_receiver.schema)
    domain = verification_domain(sender_receiver, [sentence], DB)
    result = verify(sender_receiver, sentence, DB, domain=domain)
    assert result.satisfied == expected, result.summary()

    # sample lassos; a SATISFIED verdict must hold on every sample
    for seed in range(12):
        lasso = sample_lasso(sender_receiver, DB, domain.values, seed,
                             DECIDABLE_DEFAULT)
        if lasso is None or not lasso[1]:
            continue
        for valuation in canonical_valuations(sentence.variables, domain):
            # Dom(rho) restriction: skip valuations whose fresh values
            # never occur in this sampled run
            run_domain = set()
            for s in lasso[0] + lasso[1]:
                run_domain |= s.active_domain()
            if any(v not in run_domain and v not in domain.constants
                   for v in valuation.values()):
                continue
            body = sentence.instantiate(valuation)
            prefix, cycle = lasso_word(
                sender_receiver, domain.values, lasso, payloads_of(body)
            )
            holds = evaluate_on_word(body, prefix, cycle)
            if result.satisfied:
                assert holds, (
                    f"verifier said SATISFIED but sampled run violates "
                    f"{prop_text} under {valuation} (seed {seed})"
                )


@pytest.mark.parametrize("prop_text,expected", PROPERTIES)
def test_counterexamples_violate_on_word_level(sender_receiver, prop_text,
                                               expected):
    if expected:
        pytest.skip("property holds; no counterexample to check")
    sentence = parse_ltlfo(prop_text, sender_receiver.schema)
    domain = verification_domain(sender_receiver, [sentence], DB)
    result = verify(sender_receiver, sentence, DB, domain=domain)
    assert not result.satisfied
    cex = result.counterexample
    from repro.fo.terms import Var
    valuation = {Var(k): v for k, v in cex.valuation.items()}
    body = sentence.instantiate(valuation)
    lasso = (cex.lasso.prefix, cex.lasso.cycle)
    prefix, cycle = lasso_word(
        sender_receiver, domain.values, lasso, payloads_of(body)
    )
    assert evaluate_on_word(lnot(body), prefix, cycle)
