"""Tests for ``repro lint`` (exit codes, output formats, pre-flight)."""

import json

import pytest

from repro.cli import main

CLEAN_SPEC = """
peer S {
    database items/1
    input pick/1
    out flat msg/1
    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}
peer R {
    state got/1
    in flat msg/1
    insert got(x) <- ?msg(x)
}
database S {
    items: ("a",)
}
property safety:
    forall x: G( R.got(x) -> S.items(x) )
"""

DEFECT_SPEC = """
peer A {
    state s/1
    in flat q/1
    insert s(x) <- ?q(x)
    send r(x) <- ?q(x)
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.dws"
    path.write_text(CLEAN_SPEC)
    return str(path)


@pytest.fixture
def defect_file(tmp_path):
    path = tmp_path / "defect.dws"
    path.write_text(DEFECT_SPEC)
    return str(path)


class TestExitCodes:
    def test_clean_library_target_exits_zero(self, capsys):
        assert main(["lint", "loan"]) == 0
        out = capsys.readouterr().out
        assert "DWV401" in out
        assert "0 error(s)" in out

    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0

    def test_error_diagnostics_exit_one(self, defect_file, capsys):
        assert main(["lint", defect_file]) == 1
        assert "DWV301" in capsys.readouterr().out

    def test_unparseable_spec_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.dws"
        path.write_text("peer A {\n    this is not a declaration\n}\n")
        assert main(["lint", str(path)]) == 2

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "no/such/spec.dws"]) == 2

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.dws"
        # unreachable state: a warning, not an error
        path.write_text("""
peer A {
    state s/1
    state never/1
    in flat q/1
    insert s(x) <- ?q(x) & never(x)
}
""")
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--strict"]) == 1


class TestFormats:
    def test_json_shape(self, clean_file, capsys):
        assert main(["lint", clean_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"
        assert payload["target"] == clean_file
        assert "structure" in payload["passes"]
        assert "composition" in payload["classifications"]

    def test_sarif_to_output_file(self, clean_file, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        assert main(["lint", clean_file, "--format", "sarif",
                     "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_text_reports_classification(self, capsys):
        main(["lint", "travel"])
        out = capsys.readouterr().out
        assert "decidable (Theorem 3.4, PSPACE)" in out

    def test_metrics_json(self, clean_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(["lint", clean_file, "--metrics-json", str(metrics)])
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro.metrics/2"
        [entry] = payload["results"]
        assert entry["target"] == clean_file
        assert entry["passes"][-1] == "decidability"


class TestSemanticsFlags:
    def test_perfect_channels_flip_classification(self, clean_file,
                                                  capsys):
        assert main(["lint", clean_file, "--perfect"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.7" in out
        assert "DWV402" in out


class TestVerifyPreflight:
    def test_verify_warns_on_undecidable_configuration(self, clean_file,
                                                       capsys):
        code = main(["verify", clean_file, "--property", "safety",
                     "--perfect"])
        err = capsys.readouterr().err
        assert code == 0
        assert "Theorem 3.7" in err
        assert "repro lint" in err

    def test_verify_silent_when_decidable(self, clean_file, capsys):
        main(["verify", clean_file, "--property", "safety"])
        assert "warning" not in capsys.readouterr().err


class TestMultiTarget:
    def test_text_sections_per_target(self, clean_file, capsys):
        assert main(["lint", clean_file, "loan"]) == 0
        out = capsys.readouterr().out
        assert f"== {clean_file} ==" in out
        assert "== loan ==" in out

    def test_json_wraps_targets(self, clean_file, capsys):
        assert main(["lint", clean_file, "loan", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"
        assert [t["target"] for t in payload["targets"]] == \
            [clean_file, "loan"]

    def test_sarif_one_run_per_target(self, clean_file, capsys):
        assert main(["lint", clean_file, "loan",
                     "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["runs"]) == 2
        for run in doc["runs"]:
            for result in run["results"]:
                assert result["partialFingerprints"]["reproLint/v1"]

    def test_bad_target_does_not_mask_good_ones(self, clean_file, capsys):
        assert main(["lint", clean_file, "no/such.dws"]) == 2
        captured = capsys.readouterr()
        assert "0 error(s)" in captured.out
        assert "no/such.dws" in captured.err

    def test_exit_is_max_over_targets(self, clean_file, defect_file,
                                      capsys):
        assert main(["lint", clean_file, defect_file]) == 1


class TestGithubFormat:
    def test_annotations_stream(self, defect_file, capsys):
        assert main(["lint", defect_file, "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error title=DWV301::" in out

    def test_clean_target_emits_notices_only(self, capsys):
        assert main(["lint", "loan", "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::notice title=DWV401::" in out
        assert "::error" not in out

    def test_newlines_are_escaped(self, tmp_path, capsys):
        path = tmp_path / "warn.dws"
        path.write_text(CLEAN_SPEC)
        main(["lint", str(path), "--format", "github"])
        for line in capsys.readouterr().out.splitlines():
            if line.startswith("::"):
                assert "\n" not in line


class TestCacheFlag:
    def test_warm_run_is_byte_identical_and_all_hits(
            self, clean_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["lint", clean_file, "--cache", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "doc-misses=1" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "doc-hits=1" in second.err
        assert "peer-misses=0" in second.err

    def test_no_cache_is_the_default(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "lint-cache:" not in capsys.readouterr().err

    def test_cache_respects_semantics_flags(self, clean_file, tmp_path,
                                            capsys):
        cache_dir = str(tmp_path / "cache")
        main(["lint", clean_file, "--cache", "--cache-dir", cache_dir])
        capsys.readouterr()
        code = main(["lint", clean_file, "--perfect", "--cache",
                     "--cache-dir", cache_dir])
        captured = capsys.readouterr()
        assert code == 0
        assert "doc-misses=1" in captured.err
        assert "Theorem 3.7" in captured.out
