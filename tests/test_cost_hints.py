"""Tests for the static cost model and its batch-planning hints."""

from repro.analysis import lint_composition
from repro.analysis.cost import composition_cost, peer_state_bits
from repro.verifier.parallel import SweepTask, plan_batches


def grid(groups, ctxs, per_cell):
    tasks = []
    for group in range(groups):
        order = 0
        for ctx in range(ctxs):
            for _ in range(per_cell):
                tasks.append(SweepTask(group=group, order=order, ctx=ctx,
                                       sentence=group, valuation=()))
                order += 1
    return tasks


class TestPlanBatches:
    def test_unhinted_behavior_is_unchanged(self):
        tasks = grid(1, 2, 16)
        assert plan_batches(tasks, 2) == plan_batches(tasks, 2, None)
        assert plan_batches(tasks, 2) == plan_batches(tasks, 2, {})

    def test_hints_change_batch_sizing_deterministically(self):
        tasks = grid(1, 2, 16)
        flat = plan_batches(tasks, 2)
        hints = {(0, 0): 3.0, (0, 1): 1.0}
        hinted = plan_batches(tasks, 2, hints)
        assert hinted != flat
        assert hinted == plan_batches(tasks, 2, dict(hints))
        # expensive cell -> finer batches, cheap cell -> coarser
        cell = lambda batches, ctx: [len(b) for b in batches
                                     if b[0].ctx == ctx]
        assert max(cell(hinted, 0)) < max(cell(flat, 0))
        assert max(cell(hinted, 1)) > max(cell(flat, 1))

    def test_batches_cover_tasks_in_order(self):
        tasks = grid(2, 2, 7)
        for hints in (None, {(0, 0): 9.0, (1, 1): 0.25}):
            batches = plan_batches(tasks, 3, hints)
            assert [t for b in batches for t in b] == tasks
            for batch in batches:
                assert len({(t.group, t.ctx) for t in batch}) == 1

    def test_nonpositive_and_unknown_weights_are_ignored(self):
        tasks = grid(1, 1, 8)
        assert plan_batches(tasks, 2, {(0, 0): 0.0}) == \
            plan_batches(tasks, 2)
        assert plan_batches(tasks, 2, {(9, 9): 5.0}) == \
            plan_batches(tasks, 2)


class TestCostModel:
    def test_peer_bits_grow_with_domain(self):
        from repro.library.loan import loan_composition

        peer = loan_composition().peer("O")
        assert peer_state_bits(peer, 3) < peer_state_bits(peer, 5)

    def test_composition_cost_has_per_peer_entries(self):
        from repro.library.payments import payments_composition

        cost = composition_cost(payments_composition(), 4, 1)
        assert cost["total"] > 0
        assert {"peer.Shop", "peer.PSP", "peer.Bank"} <= set(cost)

    def test_lint_report_carries_cost_hints(self):
        from repro.library.dispatch import dispatch_composition

        report = lint_composition(dispatch_composition())
        assert "cost" in report.passes_run
        assert report.cost_hints["total"] > 0
