"""Shared fixtures: small compositions used across test modules."""

import pytest

from repro.fo import Instance
from repro.runtime import clear_rule_cache
from repro.spec import Composition, PeerBuilder


@pytest.fixture(autouse=True)
def _fresh_rule_cache():
    """Isolate the process-local rule-firing memo between tests.

    The cache only memoizes pure rule evaluations, but hidden sharing
    makes timing and cache-counter assertions order-dependent; clearing
    it keeps every test hermetic.
    """
    clear_rule_cache()
    yield
    clear_rule_cache()


@pytest.fixture
def sender_receiver():
    """A minimal closed composition: S picks a db value, R stores it."""
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    return Composition([sender, receiver])


@pytest.fixture
def sender_receiver_db():
    return {"S": Instance({"items": [("a",)]})}


@pytest.fixture
def nested_pair():
    """A closed composition with a nested channel carrying row sets."""
    producer = (
        PeerBuilder("P")
        .database("rows", 2)
        .input("publish", 0)
        .nested_out_queue("bulk", 2)
        .input_rule("publish", [], "true")
        .send_rule("bulk", ["x", "y"], "publish & rows(x, y)")
        .build()
    )
    consumer = (
        PeerBuilder("C")
        .state("stored", 2)
        .nested_in_queue("bulk", 2)
        .insert_rule("stored", ["x", "y"], "?bulk(x, y)")
        .build()
    )
    return Composition([producer, consumer])


@pytest.fixture
def nested_pair_db():
    return {"P": Instance({"rows": [("a", "b"), ("a", "c")]})}


@pytest.fixture
def open_relay():
    """An open composition: P0 sends to the environment, which feeds P1."""
    p0 = (
        PeerBuilder("P0")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("outbound", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("outbound", ["x"], "pick(x)")
        .build()
    )
    p1 = (
        PeerBuilder("P1")
        .state("seen", 1)
        .flat_in_queue("inbound", 1)
        .insert_rule("seen", ["x"], "?inbound(x)")
        .build()
    )
    return Composition([p0, p1])


@pytest.fixture
def open_relay_db():
    return {"P0": Instance({"items": [("a",)]})}
