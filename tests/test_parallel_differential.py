"""Differential testing of the parallel sweep against the sequential one.

For every library composition and a sweep of its shipped properties,
``verify(..., workers=1)`` and ``verify(..., workers=4)`` must return

* identical verdicts,
* equivalent counterexamples -- the same decisive valuation, and a
  cycle that replays as a genuine run through the operational
  semantics (:func:`repro.runtime.validate_lasso`), and
* consistent aggregated node counts: the parallel driver only counts
  tasks at or before the decisive order, so ``product_nodes_visited``
  matches the sequential sweep exactly.

The heavyweight full-grid sweeps carry ``@pytest.mark.slow`` (run them
with ``pytest -m slow``); the unmarked cases keep the tier-1 suite
fast while still exercising the real process pool.
"""

import pytest

from repro.fo import Instance
from repro.library import ecommerce, loan, synthetic, travel
from repro.runtime import validate_lasso
from repro.spec import Composition, PeerBuilder
from repro.verifier import verification_domain, verify

WORKERS = 4


def sender_receiver_case():
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": [("a",), ("b",)]})}
    return comp, dbs


def _cases():
    """(label, composition, databases, property, candidates, expected)."""
    sr_comp, sr_dbs = sender_receiver_case()
    loan_comp = loan.loan_composition()
    loan_buggy = loan.loan_composition(buggy_officer=True)
    eco_comp = ecommerce.ecommerce_composition()
    travel_comp = travel.travel_composition()
    chain = synthetic.relay_chain(1)
    eco_cands = {"p": ("widget",), "card": ("visa", "amex")}
    travel_cands = {"f": ("fl1",), "d": ("rome",), "r": ("rm1",)}
    return [
        ("sr-safety", sr_comp, sr_dbs,
         "forall x: G( R.got(x) -> S.items(x) )", None, True),
        ("sr-liveness", sr_comp, sr_dbs,
         "forall x: G( S.pick(x) -> F R.got(x) )", None, False),
        ("loan-policy", loan_comp, loan.standard_database("fair"),
         loan.PROPERTY_BANK_POLICY_POINTWISE,
         loan.STANDARD_CANDIDATES, True),
        ("loan-letter", loan_comp, loan.standard_database("fair"),
         loan.PROPERTY_LETTER_NEEDS_APPLICATION,
         loan.STANDARD_CANDIDATES, True),
        ("loan-buggy", loan_buggy, loan.standard_database("poor"),
         loan.PROPERTY_BANK_POLICY_POINTWISE,
         loan.STANDARD_CANDIDATES, False),
        ("loan-responsiveness", loan_comp, loan.standard_database("fair"),
         loan.PROPERTY_RESPONSIVENESS, loan.STANDARD_CANDIDATES, False),
        ("ecommerce-auth", eco_comp, ecommerce.standard_database("good"),
         ecommerce.PROPERTY_SHIP_REQUIRES_AUTH, eco_cands, True),
        ("ecommerce-resolved", eco_comp,
         ecommerce.standard_database("good"),
         ecommerce.PROPERTY_ORDER_RESOLVED, eco_cands, False),
        ("travel-itinerary", travel_comp, travel.standard_database(),
         travel.PROPERTY_ITINERARY_CONFIRMED, travel_cands, True),
        ("travel-booking", travel_comp, travel.standard_database(),
         travel.PROPERTY_BOOKING_CONFIRMED, travel_cands, False),
        ("chain-safety", chain, synthetic.chain_databases(1),
         synthetic.chain_safety_property(1), None, True),
        ("chain-liveness", chain, synthetic.chain_databases(1),
         synthetic.chain_liveness_property(1), None, False),
    ]


CASES = _cases()


def run_differential(comp, dbs, prop, candidates, expected):
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    seq = verify(comp, prop, dbs, domain=dom,
                 valuation_candidates=candidates, workers=1)
    par = verify(comp, prop, dbs, domain=dom,
                 valuation_candidates=candidates, workers=WORKERS)
    assert seq.satisfied == expected, seq.summary()
    assert par.satisfied == seq.satisfied, (
        f"verdict diverged: seq={seq.verdict} par={par.verdict}"
    )
    assert par.stats.product_nodes_visited == \
        seq.stats.product_nodes_visited, (
            "aggregated nodes_visited diverged: "
            f"seq={seq.stats.product_nodes_visited} "
            f"par={par.stats.product_nodes_visited}"
        )
    assert par.stats.valuations_checked == seq.stats.valuations_checked
    if expected:
        assert seq.counterexample is None and par.counterexample is None
        return
    assert seq.counterexample is not None and par.counterexample is not None
    assert par.counterexample.valuation == seq.counterexample.valuation
    # the decisive lasso must be a genuine violating run: replay its
    # snapshots through the legal-successor relation
    problems = validate_lasso(comp, dbs, dom.values,
                              par.counterexample.lasso)
    assert not problems, problems
    assert par.counterexample.lasso == seq.counterexample.lasso


@pytest.mark.parametrize(
    "label,comp,dbs,prop,candidates,expected",
    [c for c in CASES if c[0].startswith(("sr-", "chain-"))],
    ids=lambda v: v if isinstance(v, str) else None,
)
def test_differential_small(label, comp, dbs, prop, candidates, expected):
    run_differential(comp, dbs, prop, candidates, expected)


@pytest.mark.slow
@pytest.mark.parametrize(
    "label,comp,dbs,prop,candidates,expected",
    [c for c in CASES if not c[0].startswith(("sr-", "chain-"))],
    ids=lambda v: v if isinstance(v, str) else None,
)
def test_differential_library(label, comp, dbs, prop, candidates,
                              expected):
    run_differential(comp, dbs, prop, candidates, expected)


@pytest.mark.parametrize("workers", [2, 4])
def test_verify_all_differential(workers):
    comp, dbs = sender_receiver_case()
    props = [
        "forall x: G( R.got(x) -> S.items(x) )",
        "forall x: G( S.pick(x) -> F R.got(x) )",
        "G R.empty_msg",
    ]
    from repro.verifier import verify_all
    seq = verify_all(comp, props, dbs, workers=1)
    par = verify_all(comp, props, dbs, workers=workers)
    assert [r.verdict for r in seq] == [r.verdict for r in par]
    for s, p in zip(seq, par):
        assert s.stats.product_nodes_visited == \
            p.stats.product_nodes_visited
        if s.counterexample is not None:
            assert p.counterexample.valuation == s.counterexample.valuation
            assert p.counterexample.lasso == s.counterexample.lasso


def test_verify_over_databases_differential():
    comp, _dbs = sender_receiver_case()
    from repro.verifier import verify_over_databases
    kwargs = dict(
        relation_arities_by_peer={"S": {"items": 1}},
        domain_values=("a", "b"),
        max_rows=1,
    )
    seq = verify_over_databases(
        comp, "forall x: G( R.got(x) -> S.items(x) )", workers=1, **kwargs
    )
    par = verify_over_databases(
        comp, "forall x: G( R.got(x) -> S.items(x) )", workers=WORKERS,
        **kwargs
    )
    assert seq.verdict == par.verdict == "SATISFIED"

    seq = verify_over_databases(
        comp, "G R.empty_msg", workers=1, **kwargs
    )
    par = verify_over_databases(
        comp, "G R.empty_msg", workers=WORKERS, **kwargs
    )
    assert seq.verdict == par.verdict == "VIOLATED"
    assert par.counterexample.lasso == seq.counterexample.lasso


def test_parallel_stats_shape():
    """The parallel sweep records per-task stats and worker counts."""
    comp, dbs = sender_receiver_case()
    dom = verification_domain(
        comp, [], dbs, fresh_count=1
    )
    par = verify(comp, "forall x: G( R.got(x) -> S.items(x) )", dbs,
                 domain=dom, workers=2)
    assert par.stats.workers == 2
    assert par.stats.tasks_run == par.stats.valuations_checked
    assert par.stats.task_seconds > 0
    assert len(par.stats.per_task) >= par.stats.tasks_run
    assert "workers: 2" in par.summary()
