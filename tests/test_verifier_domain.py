"""Tests for verification-domain computation and valuation enumeration."""

from repro.fo import Instance
from repro.ltlfo import parse_ltlfo
from repro.fo.terms import Var
from repro.verifier import (
    VerificationDomain, canonical_valuations, enumerate_databases,
    fresh_values, verification_domain,
)


class TestFreshValues:
    def test_distinct_from_taken(self):
        fresh = fresh_values(3, {"$v0", "x"})
        assert len(fresh) == 3
        assert "$v0" not in fresh
        assert len(set(fresh)) == 3


class TestVerificationDomain:
    def test_constants_from_spec_property_db(self, sender_receiver):
        prop = parse_ltlfo('G( R.got(x) -> x = "k" )',
                           sender_receiver.schema)
        dbs = {"S": Instance({"items": [("a",)]})}
        dom = verification_domain(sender_receiver, [prop], dbs)
        assert "k" in dom.constants
        assert "a" in dom.constants

    def test_fresh_count_default_covers_rule_width(self, sender_receiver):
        dom = verification_domain(sender_receiver, [], {})
        # widest rule has 1 variable -> at least 2 fresh values
        assert len(dom.fresh) >= 2

    def test_fresh_count_override(self, sender_receiver):
        dom = verification_domain(sender_receiver, [], {}, fresh_count=5)
        assert len(dom.fresh) == 5

    def test_values_ordering_stable(self, sender_receiver):
        d1 = verification_domain(sender_receiver, [], {})
        d2 = verification_domain(sender_receiver, [], {})
        assert d1.values == d2.values


class TestCanonicalValuations:
    def test_single_variable(self):
        dom = VerificationDomain(("c",), ("f0", "f1"))
        vals = canonical_valuations([Var("x")], dom)
        # c, or the FIRST fresh value only (symmetry)
        assert [v[Var("x")] for v in vals] == ["c", "f0"]

    def test_two_variables_fresh_in_order(self):
        dom = VerificationDomain((), ("f0", "f1", "f2"))
        vals = canonical_valuations([Var("x"), Var("y")], dom)
        pairs = {(v[Var("x")], v[Var("y")]) for v in vals}
        # x must take f0; y may reuse f0 or introduce f1 -- never f2
        assert pairs == {("f0", "f0"), ("f0", "f1")}

    def test_empty_variables(self):
        dom = VerificationDomain(("c",), ("f",))
        assert canonical_valuations([], dom) == [{}]

    def test_count_vs_naive(self):
        dom = VerificationDomain(("a", "b"), ("f0", "f1", "f2"))
        vals = canonical_valuations([Var("x"), Var("y")], dom)
        # naive would be 5^2 = 25; canonical collapses fresh symmetry
        assert len(vals) < 25
        # constants fully enumerated
        pairs = {(v[Var("x")], v[Var("y")]) for v in vals}
        assert ("a", "b") in pairs and ("b", "a") in pairs


class TestEnumerateDatabases:
    def test_counts(self):
        dbs = enumerate_databases({"r": 1}, ("a", "b"), max_rows=1)
        # 0 rows or 1 of 2 rows = 3 instances
        assert len(dbs) == 3

    def test_cross_product_of_relations(self):
        dbs = enumerate_databases({"r": 1, "s": 1}, ("a",), max_rows=1)
        assert len(dbs) == 4
